package core

import (
	"context"
	"testing"

	"repro/internal/perm"
)

// TestMonitorCadence: the monitor must fire every CheckEvery iterations
// with the current iteration count.
func TestMonitorCadence(t *testing.T) {
	var calls []int64
	opts := Options{
		Seed:          1,
		MaxIterations: 100,
		MaxRuns:       1,
		CheckEvery:    10,
		Monitor: func(iter int64, cost int, cfg []int) Directive {
			calls = append(calls, iter)
			if cost < 0 || len(cfg) != 10 {
				t.Errorf("bad monitor args: cost=%d len=%d", cost, len(cfg))
			}
			return Directive{}
		},
	}
	res, err := Solve(context.Background(), floorProblem{sortProblem{10}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("floorProblem cannot be solved")
	}
	if len(calls) != 10 {
		t.Fatalf("monitor fired %d times over 100 iterations with CheckEvery=10, want 10", len(calls))
	}
	for i, it := range calls {
		if it != int64((i+1)*10) {
			t.Fatalf("call %d at iteration %d, want %d", i, it, (i+1)*10)
		}
	}
}

// TestMonitorStop: a Stop directive interrupts the solve.
func TestMonitorStop(t *testing.T) {
	opts := Options{
		Seed:       2,
		CheckEvery: 5,
		Monitor: func(iter int64, cost int, cfg []int) Directive {
			return Directive{Stop: true}
		},
	}
	res, err := Solve(context.Background(), stuckProblem{8}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("Stop directive did not interrupt: %v", res)
	}
	if res.Iterations != 5 {
		t.Fatalf("stopped after %d iterations, want 5", res.Iterations)
	}
}

// TestMonitorRestart: a Restart directive abandons the current run; with
// MaxRuns=2 the engine performs exactly two runs.
func TestMonitorRestart(t *testing.T) {
	restarts := 0
	opts := Options{
		Seed:          3,
		MaxIterations: 1000,
		MaxRuns:       2,
		CheckEvery:    10,
		Monitor: func(iter int64, cost int, cfg []int) Directive {
			restarts++
			return Directive{Restart: true}
		},
	}
	res, err := Solve(context.Background(), stuckProblem{8}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("stuckProblem cannot be solved")
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1 (two runs)", res.Restarts)
	}
	// Each run restarts at its first poll (iteration 10 of the run).
	if res.Iterations != 20 {
		t.Fatalf("Iterations = %d, want 20", res.Iterations)
	}
}

// TestMonitorSetConfig: a SetConfig directive teleports the walker; the
// engine accepts a valid permutation and solves from it immediately.
func TestMonitorSetConfig(t *testing.T) {
	n := 12
	target := perm.Identity(n)
	injected := false
	opts := Options{
		Seed:       4,
		CheckEvery: 3,
		Monitor: func(iter int64, cost int, cfg []int) Directive {
			if injected {
				return Directive{}
			}
			injected = true
			return Directive{SetConfig: target}
		},
	}
	res, err := Solve(context.Background(), sortProblem{n}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("not solved after teleporting to the solution: %v", res)
	}
	// The engine checks cost right after adoption: iterations stay at
	// the poll point.
	if res.Iterations > 3 {
		t.Fatalf("took %d iterations, want <= 3 (teleport at first poll)", res.Iterations)
	}
}

// TestMonitorSetConfigInvalidIgnored: malformed configurations must be
// rejected without corrupting the run.
func TestMonitorSetConfigInvalidIgnored(t *testing.T) {
	bad := [][]int{
		{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, // duplicate
		{0, 1},                                // wrong length
		nil,                                   // nil is "no directive"
	}
	i := 0
	opts := Options{
		Seed:          5,
		MaxIterations: 200,
		MaxRuns:       1,
		CheckEvery:    10,
		Monitor: func(iter int64, cost int, cfg []int) Directive {
			d := Directive{}
			if i < len(bad) {
				d.SetConfig = bad[i]
				i++
			}
			return d
		},
	}
	res, err := Solve(context.Background(), floorProblem{sortProblem{12}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("floorProblem cannot be solved")
	}
	if res.Iterations != 200 {
		t.Fatalf("run did not complete its budget after invalid directives: %v", res)
	}
}
