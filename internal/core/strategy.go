package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// This file defines the strategy layer of the engine: the plug-point
// interfaces (VariableSelector, MoveSelector, RestartPolicy), the State
// they operate on, and the registry that resolves Options.Strategy
// names into fresh strategy instances.
//
// The engine loop in engine.go is strategy-agnostic: each iteration it
// asks the VariableSelector for a variable, the MoveSelector for a swap
// partner, and — when the move selector reports a local minimum — the
// RestartPolicy for an escape, a freeze, or a partial reset. The
// default implementations in selection.go reproduce the classic
// Adaptive Search behavior exactly; alternative strategies plug in new
// behaviors without touching the loop, which is what heterogeneous
// multi-walk portfolios (internal/multiwalk) compose across walkers.

// State is the live search state the engine exposes to strategy
// implementations. The engine passes the same *State on every call of
// a run; strategies must not retain it or the slices it holds beyond
// the call.
type State struct {
	// Problem is the CSP being solved.
	Problem Problem
	// Rand is the engine's private deterministic RNG stream. All
	// strategy randomness must come from it so runs stay reproducible
	// for a seed.
	Rand *rng.Rand
	// Opts points at the engine's normalized options.
	Opts *Options
	// Cfg is the current configuration (owned by the engine).
	Cfg []int
	// Cost is the current global cost of Cfg.
	Cost int
	// Iter is the iteration counter of the current run (1-based inside
	// an iteration).
	Iter int64
	// Marks holds the tabu marks: Marks[i] >= Iter means variable i is
	// frozen. RestartPolicy implementations write it; selectors honor
	// it via Frozen.
	Marks []int64

	errv     ErrorVector
	errLive  MaintainedErrorVector
	errBuf   []int
	errDirty bool
	moveEval MoveEvaluator
	moveBuf  []int

	// Finite-domain fast paths (fd.go); nil on the permutation path.
	fd         FDProblem
	assignEval AssignEvaluator
	assignBuf  []int
}

// Frozen reports whether variable i is tabu at the current iteration.
func (s *State) Frozen(i int) bool { return s.Marks[i] >= s.Iter }

// CostIfSwap returns the global cost after a hypothetical swap of
// positions i and j under the current configuration.
func (s *State) CostIfSwap(i, j int) int {
	return s.Problem.CostIfSwap(s.Cfg, s.Cost, i, j)
}

// Errors returns the per-variable projected error vector when the
// problem implements ErrorVector, or nil when it does not. The returned
// slice is a buffer reused across calls; callers must treat it as
// read-only and must not retain it. This is the incremental fast path:
// implementations serve the vector from caches invalidated through
// ExecutedSwap instead of recomputing each variable's projection from
// scratch, and the buffer itself is refetched only after the engine
// marks it stale (InvalidateErrors) — iterations that did not move pay
// nothing at all.
func (s *State) Errors() []int {
	if s.errLive != nil {
		return s.errLive.LiveErrors(s.Cfg)
	}
	if s.errv == nil {
		return nil
	}
	if s.errDirty {
		s.errv.ErrorsOnVariables(s.Cfg, s.errBuf)
		s.errDirty = false
	}
	return s.errBuf
}

// SwapCosts returns the full cost row for variable i — entry j holds
// the global cost a swap of positions i and j would produce, entry i
// the current cost — or nil when the problem does not implement
// MoveEvaluator. The returned slice is a buffer reused across calls;
// callers must consume it before the next SwapCosts call and must not
// retain it. Move selectors use this as the batched fast path: one
// devirtualized pass instead of n-1 interface-dispatched CostIfSwap
// calls, with bit-identical values.
func (s *State) SwapCosts(i int) []int {
	if s.moveEval == nil {
		return nil
	}
	s.moveEval.CostsIfSwapAll(s.Cfg, s.Cost, i, s.moveBuf)
	return s.moveBuf
}

// InvalidateErrors marks the buffered error vector stale, forcing the
// next Errors call to refetch it from the problem. The engine calls it
// after every configuration change (swap, partial reset, teleport, run
// start); external drivers built on NewState must call it after
// mutating Cfg or the problem's incremental state themselves. For
// problems on the MaintainedErrorVector fast path this is a no-op: the
// problem keeps its live vector current through ExecutedSwap/Cost, so
// there is nothing to invalidate.
func (s *State) InvalidateErrors() {
	if s.errLive == nil {
		s.errDirty = true
	}
}

// bindProblem wires the optional fast-path interfaces of p into the
// state.
func (s *State) bindProblem(p Problem, n int) {
	s.Problem = p
	if lv, ok := p.(MaintainedErrorVector); ok {
		s.errLive = lv
		s.errv = lv
	} else if ev, ok := p.(ErrorVector); ok {
		s.errv = ev
		s.errBuf = make([]int, n)
		s.errDirty = true
	}
	if me, ok := p.(MoveEvaluator); ok {
		s.moveEval = me
		s.moveBuf = make([]int, n)
	}
	s.bindFD(p, n)
}

// NewState builds a standalone State over p — a harness for strategy
// development, tests and micro-benchmarks, wired exactly as the engine
// wires its own state (including the ErrorVector fast path when p
// implements it). cfg is adopted as the configuration (nil selects a
// random permutation from seed); the cost is computed, tabu marks are
// clear, and Iter starts at 1. The engine itself does not use this
// constructor.
func NewState(p Problem, opts Options, seed uint64, cfg []int) *State {
	n := p.Size()
	opts.normalize(n)
	s := &State{
		Rand:  rng.New(seed),
		Opts:  &opts,
		Marks: make([]int64, n),
		Iter:  1,
	}
	s.bindProblem(p, n)
	if cfg == nil {
		cfg = s.Rand.Perm(n)
	}
	s.Cfg = cfg
	s.Cost = p.Cost(cfg)
	return s
}

// VariableSelector picks the variable to move each iteration.
type VariableSelector interface {
	// SelectVariable returns the index of the variable the engine
	// should try to move. Implementations should honor tabu marks
	// (State.Frozen) unless deliberately ignoring them.
	SelectVariable(s *State) int
}

// MoveSelector picks the swap partner for the selected variable.
type MoveSelector interface {
	// SelectMove returns the swap partner j for variable i and the
	// global cost the swap would produce. Returning j == i reports
	// that no acceptable move exists (a local minimum); the engine
	// then consults the RestartPolicy.
	SelectMove(s *State, i int) (j, cost int)
}

// RestartPolicy owns the diversification machinery: tabu freezes after
// moves and local minima, probabilistic escapes, and the decision to
// partially reset the configuration. Implementations are stateful (they
// typically count frozen variables) and are created fresh per Solve
// call by the strategy registry.
type RestartPolicy interface {
	// NewRun clears per-run policy state. Called at the start of every
	// run (the first and each restart) and after the engine teleports
	// to a Monitor-supplied configuration.
	NewRun(s *State)
	// OnSwap is invoked after the engine executed the accepted swap
	// (i, j), letting the policy apply post-swap freezes.
	OnSwap(s *State, i, j int)
	// OnLocalMinimum reacts to a local minimum on variable i. It
	// returns an escape swap (vi, vj) with vj >= 0 — the engine
	// executes it unconditionally, even uphill — or vj == -1 after
	// freezing, with reset reporting whether the engine should
	// partially reset the configuration (which also clears all tabu
	// marks).
	OnLocalMinimum(s *State, i int) (vi, vj int, reset bool)
}

// Strategy bundles the three plug points of the engine loop. Zero-value
// fields are filled with the default Adaptive Search implementations at
// Solve time.
type Strategy struct {
	// Name labels the strategy in results and harness output.
	Name string
	// Variable picks the variable to move each iteration.
	Variable VariableSelector
	// Move picks the swap partner for the selected variable.
	Move MoveSelector
	// Restart owns freezes, escapes and partial resets.
	Restart RestartPolicy
}

// fillDefaults replaces nil plug points with the Adaptive Search
// defaults.
func (st *Strategy) fillDefaults() {
	if st.Name == "" {
		st.Name = StrategyAdaptive
	}
	if st.Variable == nil {
		st.Variable = AdaptiveVariable{}
	}
	if st.Move == nil {
		st.Move = MinConflictMove{}
	}
	if st.Restart == nil {
		st.Restart = &AdaptiveRestart{}
	}
}

// Built-in strategy names, resolvable through Options.Strategy.
const (
	// StrategyAdaptive is classic Adaptive Search: worst-variable
	// selection, min-conflict moves, freeze/reset diversification. The
	// default when Options.Strategy is empty.
	StrategyAdaptive = "adaptive"
	// StrategyRandomWalk replaces worst-variable selection with a
	// uniformly random non-frozen variable, keeping min-conflict moves
	// — a cheap, highly diverse walker for portfolios.
	StrategyRandomWalk = "random-walk"
	// StrategyMetropolis keeps worst-variable selection but samples
	// random swap partners and accepts uphill moves with probability
	// exp(-delta/T), escaping most local minima thermally; rejected
	// proposals still fall through to the default freeze/reset policy.
	StrategyMetropolis = "metropolis"
)

var (
	strategyMu       sync.RWMutex
	strategyRegistry = map[string]func() Strategy{}
)

// RegisterStrategy adds a named strategy factory to the global
// registry, making it resolvable through Options.Strategy (and thus
// the CLI flags and multi-walk portfolios). The factory is invoked
// once per Solve call so implementations may carry per-run state.
// Registering a duplicate name panics.
func RegisterStrategy(name string, factory func() Strategy) {
	if name == "" || factory == nil {
		panic("core: RegisterStrategy needs a name and a factory")
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyRegistry[name]; dup {
		panic("core: duplicate strategy registration of " + name)
	}
	strategyRegistry[name] = factory
}

// StrategyNames returns the sorted names of all registered strategies.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyRegistry))
	for n := range strategyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// unknownStrategyError is the single constructor for the error both
// Validate and strategyFor report, so the wording cannot drift.
func unknownStrategyError(name string) error {
	return fmt.Errorf("core: unknown strategy %q (known: %v)", name, StrategyNames())
}

// strategyFor resolves a strategy name ("" means adaptive) into a
// fresh instance with all plug points filled.
func strategyFor(name string) (Strategy, error) {
	if name == "" {
		name = StrategyAdaptive
	}
	strategyMu.RLock()
	factory, ok := strategyRegistry[name]
	strategyMu.RUnlock()
	if !ok {
		return Strategy{}, unknownStrategyError(name)
	}
	st := factory()
	if st.Name == "" {
		st.Name = name
	}
	st.fillDefaults()
	return st, nil
}

// strategyKnown reports whether name resolves in the registry.
func strategyKnown(name string) bool {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	_, ok := strategyRegistry[name]
	return ok
}

func init() {
	RegisterStrategy(StrategyAdaptive, func() Strategy {
		return Strategy{Name: StrategyAdaptive}
	})
	RegisterStrategy(StrategyRandomWalk, func() Strategy {
		return Strategy{Name: StrategyRandomWalk, Variable: RandomWalkVariable{}}
	})
	RegisterStrategy(StrategyMetropolis, func() Strategy {
		return Strategy{Name: StrategyMetropolis, Move: &MetropolisMove{}}
	})
}
