package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/perm"
	"repro/internal/rng"
)

// TunedOptions returns DefaultOptions for p with the problem's Tune hook
// (if any) applied. Callers typically start from TunedOptions, override
// what they need, and pass the result to Solve.
func TunedOptions(p Problem) Options {
	o := DefaultOptions(p.Size())
	if t, ok := p.(Tuner); ok {
		t.Tune(&o)
	}
	return o
}

// Solve runs the Adaptive Search engine on p until a solution is found,
// the restart budget is exhausted, or ctx is cancelled. A nil ctx is
// treated as context.Background(). The returned error reports invalid
// options or an ill-formed problem; search outcomes (including running
// out of budget) are reported in the Result, not as errors.
func Solve(ctx context.Context, p Problem, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.Size()
	if n < 0 {
		return Result{}, fmt.Errorf("core: problem reports negative size %d", n)
	}
	opts.normalize(n)
	if err := opts.Validate(n); err != nil {
		return Result{}, err
	}
	if opts.InitialConfig != nil {
		if err := perm.Validate(opts.InitialConfig); err != nil {
			return Result{}, fmt.Errorf("core: bad InitialConfig: %w", err)
		}
	}

	e := &engine{
		p:    p,
		opts: opts,
		rand: rng.New(opts.Seed),
		done: ctx.Done(),
	}
	e.swapper, _ = p.(SwapExecutor)
	e.resetter, _ = p.(ResetHandler)

	start := time.Now()
	res := e.solve()
	res.Elapsed = time.Since(start)
	return res, nil
}

// engine holds the mutable state of one Solve call.
type engine struct {
	p        Problem
	opts     Options
	rand     *rng.Rand
	done     <-chan struct{}
	swapper  SwapExecutor
	resetter ResetHandler

	cfg   []int
	cost  int
	marks []int64 // marks[i] >= current iteration means variable i is frozen
	iter  int64   // iteration counter of the current run

	res Result

	bestCost int   // best global cost seen across all runs
	bestCfg  []int // configuration achieving bestCost
}

func (e *engine) solve() Result {
	n := e.p.Size()
	e.res = Result{Cost: math.MaxInt}
	e.bestCost = math.MaxInt

	// Degenerate sizes: a 0- or 1-variable problem has a single
	// configuration; report its cost directly.
	if n < 2 {
		cfg := perm.Identity(n)
		c := e.p.Cost(cfg)
		e.noteBest(c, cfg)
		e.res.Solved = c == 0
		e.finishResult()
		return e.res
	}

	e.marks = make([]int64, n)
	runs := 0
	for {
		runs++
		solved, interrupted := e.runOnce(runs == 1)
		if solved || interrupted {
			e.res.Solved = solved
			e.res.Interrupted = interrupted
			break
		}
		if e.opts.MaxRuns > 0 && runs >= e.opts.MaxRuns {
			break
		}
	}
	e.res.Restarts = runs - 1
	e.finishResult()
	return e.res
}

// finishResult copies the best configuration into the Result.
func (e *engine) finishResult() {
	e.res.Cost = e.bestCost
	if e.res.Solved && e.bestCfg != nil {
		e.res.Solution = perm.Copy(e.bestCfg)
	}
}

// noteBest records cfg if it improves on the best cost seen so far.
func (e *engine) noteBest(cost int, cfg []int) {
	if cost < e.bestCost {
		e.bestCost = cost
		if e.bestCfg == nil {
			e.bestCfg = make([]int, len(cfg))
		}
		copy(e.bestCfg, cfg)
	}
}

// runOnce performs a single Adaptive Search run (up to MaxIterations).
// It returns solved=true when a zero-cost configuration was reached and
// interrupted=true when the context was cancelled mid-run.
func (e *engine) runOnce(first bool) (solved, interrupted bool) {
	n := e.p.Size()
	o := &e.opts

	if first && o.InitialConfig != nil {
		e.cfg = perm.Copy(o.InitialConfig)
	} else {
		e.cfg = e.rand.Perm(n)
	}
	e.cost = e.p.Cost(e.cfg)
	for i := range e.marks {
		e.marks[i] = 0
	}
	nMarked := 0
	e.iter = 0
	e.noteBest(e.cost, e.cfg)

	checkEvery := int64(o.CheckEvery)
	for e.cost > 0 && e.iter < o.MaxIterations {
		e.iter++
		e.res.Iterations++
		if e.res.Iterations%checkEvery == 0 {
			if e.cancelled() {
				return false, true
			}
			if o.Monitor != nil {
				d := o.Monitor(e.res.Iterations, e.cost, e.cfg)
				if d.Stop {
					return false, true
				}
				if d.Restart {
					return false, false
				}
				if d.SetConfig != nil && e.adoptConfig(d.SetConfig) {
					nMarked = 0
					continue
				}
			}
		}

		var worst, bestJ, bestCost int
		if o.Exhaustive {
			worst, bestJ, bestCost = e.selectBestPair()
		} else {
			worst = e.selectWorstVariable()
			bestJ, bestCost = e.selectBestSwap(worst)
		}

		if bestJ != worst {
			// A move with cost <= current exists (possibly a sideways
			// plateau move, which Adaptive Search accepts by default —
			// "staying" competes in the tie pool above).
			e.doSwap(worst, bestJ, bestCost)
			if o.FreezeSwap > 0 {
				e.marks[worst] = e.iter + int64(o.FreezeSwap)
				e.marks[bestJ] = e.iter + int64(o.FreezeSwap)
				nMarked += 2
			}
			continue
		}

		// Local minimum: every candidate swap is strictly worse than
		// staying.
		e.res.LocalMinima++
		if o.ProbSelectLocMin > 0 && e.rand.Float64() < o.ProbSelectLocMin {
			// Probabilistic escape: force the move on a random second
			// variable (possibly uphill), as in the C library's
			// prob_select_loc_min.
			if o.Exhaustive {
				worst = e.rand.Intn(n)
			}
			j := e.rand.Intn(n - 1)
			if j >= worst {
				j++
			}
			c := e.p.CostIfSwap(e.cfg, e.cost, worst, j)
			e.doSwap(worst, j, c)
			e.res.PlateauEscapes++
			continue
		}

		// Freeze the worst variable; too many freezes since the last
		// reset trigger a partial reset.
		e.marks[worst] = e.iter + int64(o.FreezeLocMin)
		nMarked++
		if nMarked > o.ResetLimit {
			e.partialReset()
			for i := range e.marks {
				e.marks[i] = 0
			}
			nMarked = 0
		}
	}
	if e.cost == 0 {
		e.noteBest(0, e.cfg)
		return true, false
	}
	return false, e.cancelled()
}

// cancelled reports whether the context has been cancelled.
func (e *engine) cancelled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// selectWorstVariable returns the index with the highest projected error
// among non-frozen variables, breaking ties uniformly at random. When
// every variable is frozen it falls back to a uniformly random index,
// as the C library does.
func (e *engine) selectWorstVariable() int {
	worst := -1
	bestErr := math.MinInt
	ties := 0
	for i := range e.cfg {
		if e.marks[i] >= e.iter {
			continue
		}
		err := e.p.CostOnVariable(e.cfg, i)
		switch {
		case err > bestErr:
			bestErr = err
			worst = i
			ties = 1
		case err == bestErr:
			ties++
			if e.rand.Intn(ties) == 0 {
				worst = i
			}
		}
	}
	if worst < 0 {
		worst = e.rand.Intn(len(e.cfg))
	}
	return worst
}

// selectBestSwap scans all swap partners for variable i and returns the
// partner minimizing the resulting global cost, ties broken uniformly.
// Following the original Select_Var_Min_Conflict, "staying put" (j == i,
// cost unchanged) seeds the candidate pool, so sideways plateau moves
// compete with it on equal footing and strictly-worse moves are never
// taken; bestJ == i signals a genuine local minimum. With FirstBest set
// it returns the first strictly improving partner immediately.
func (e *engine) selectBestSwap(i int) (j, cost int) {
	bestJ := i
	bestCost := e.cost
	ties := 1
	for cand := range e.cfg {
		if cand == i {
			continue
		}
		c := e.p.CostIfSwap(e.cfg, e.cost, i, cand)
		switch {
		case c < bestCost:
			bestCost = c
			bestJ = cand
			ties = 1
			if e.opts.FirstBest {
				return bestJ, bestCost
			}
		case c == bestCost:
			ties++
			if e.rand.Intn(ties) == 0 {
				bestJ = cand
			}
		}
	}
	return bestJ, bestCost
}

// selectBestPair scans every unordered variable pair and returns the
// swap minimizing the resulting cost (Exhaustive mode). "Staying put" is
// in the tie pool exactly as in selectBestSwap; i == j on return signals
// a strict local minimum. Tabu marks are ignored.
func (e *engine) selectBestPair() (i, j, cost int) {
	n := len(e.cfg)
	bestI, bestJ := 0, 0
	bestCost := e.cost
	ties := 1
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			c := e.p.CostIfSwap(e.cfg, e.cost, a, b)
			switch {
			case c < bestCost:
				bestCost = c
				bestI, bestJ = a, b
				ties = 1
				if e.opts.FirstBest {
					return bestI, bestJ, bestCost
				}
			case c == bestCost:
				ties++
				if e.rand.Intn(ties) == 0 {
					bestI, bestJ = a, b
				}
			}
		}
	}
	return bestI, bestJ, bestCost
}

// doSwap executes the swap (i, j), records statistics, updates the
// incremental state of the problem and the best-seen configuration.
func (e *engine) doSwap(i, j, newCost int) {
	e.cfg[i], e.cfg[j] = e.cfg[j], e.cfg[i]
	if e.swapper != nil {
		e.swapper.ExecutedSwap(e.cfg, i, j)
	}
	e.cost = newCost
	e.res.Swaps++
	e.noteBest(newCost, e.cfg)
}

// adoptConfig teleports the walker to cfg (from a Monitor directive),
// clearing tabu marks and recomputing the cost. Invalid configurations
// are rejected.
func (e *engine) adoptConfig(cfg []int) bool {
	if len(cfg) != len(e.cfg) || perm.Validate(cfg) != nil {
		return false
	}
	copy(e.cfg, cfg)
	e.cost = e.p.Cost(e.cfg)
	for i := range e.marks {
		e.marks[i] = 0
	}
	e.noteBest(e.cost, e.cfg)
	return true
}

// partialReset perturbs the current configuration: problems implementing
// ResetHandler control their own reset; otherwise a ResetFraction of the
// variables is shuffled and the cost recomputed from scratch.
func (e *engine) partialReset() {
	e.res.Resets++
	if e.resetter != nil {
		e.cost = e.resetter.Reset(e.cfg, e.rand)
	} else {
		k := int(e.opts.ResetFraction * float64(len(e.cfg)))
		if k < 2 {
			k = 2
		}
		perm.PartialShuffle(e.cfg, k, e.rand)
		e.cost = e.p.Cost(e.cfg)
	}
	e.noteBest(e.cost, e.cfg)
}
