package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/perm"
	"repro/internal/rng"
)

// TunedOptions returns DefaultOptions for p with the problem's Tune hook
// (if any) applied. Callers typically start from TunedOptions, override
// what they need, and pass the result to Solve.
func TunedOptions(p Problem) Options {
	o := DefaultOptions(p.Size())
	if t, ok := p.(Tuner); ok {
		t.Tune(&o)
	}
	return o
}

// Solve runs the constraint-based local search engine on p until a
// solution is found, the restart budget is exhausted, or ctx is
// cancelled. A nil ctx is treated as context.Background(). The search
// strategy is resolved from opts.Strategy (classic Adaptive Search by
// default). The returned error reports invalid options or an ill-formed
// problem; search outcomes (including running out of budget) are
// reported in the Result, not as errors.
func Solve(ctx context.Context, p Problem, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.Size()
	if n < 0 {
		return Result{}, fmt.Errorf("core: problem reports negative size %d", n)
	}
	opts.normalize(n)
	if err := opts.Validate(n); err != nil {
		return Result{}, err
	}
	fd, isFD := p.(FDProblem)
	if opts.InitialConfig != nil && !isFD {
		if err := perm.Validate(opts.InitialConfig); err != nil {
			return Result{}, fmt.Errorf("core: bad InitialConfig: %w", err)
		}
	}
	strat, err := strategyFor(opts.Strategy)
	if err != nil {
		return Result{}, err
	}

	e := &engine{
		p:     p,
		opts:  opts,
		rand:  rng.New(opts.Seed),
		done:  ctx.Done(),
		strat: strat,
	}
	e.swapper, _ = p.(SwapExecutor)
	e.resetter, _ = p.(ResetHandler)
	if isFD {
		// Finite-domain encoding: run the pre-search reduction pass,
		// prove every domain habitable, and resolve the FD plug points
		// before the first iteration. Reduction errors (empty domain)
		// wrap domain.ErrUnsatisfiable — a proof, surfaced as a typed
		// error rather than an unsolved Result.
		if dr, ok := p.(DomainReducer); ok {
			if err := dr.ReduceDomains(); err != nil {
				return Result{}, fmt.Errorf("core: domain reduction: %w", err)
			}
		}
		if err := validateFDDomains(fd); err != nil {
			return Result{}, err
		}
		if opts.InitialConfig != nil {
			if err := ValidateFDConfig(fd, opts.InitialConfig); err != nil {
				return Result{}, fmt.Errorf("core: bad InitialConfig: %w", err)
			}
		}
		e.fd = fd
		e.assigner, _ = p.(AssignExecutor)
		e.assignSel, _ = strat.Move.(AssignSelector)
		if e.assignSel == nil {
			return Result{}, fmt.Errorf("core: strategy %q has no finite-domain move selector", strat.Name)
		}
		e.assignRestart, _ = strat.Restart.(AssignRestartPolicy)
	}

	start := time.Now()
	res := e.solve()
	res.Elapsed = time.Since(start)
	return res, nil
}

// engine holds the mutable state of one Solve call: the loop skeleton
// plus the strategy instance it dispatches to. The search state proper
// (configuration, cost, tabu marks) lives in st, the view handed to
// strategy plug points.
type engine struct {
	p        Problem
	opts     Options
	rand     *rng.Rand
	done     <-chan struct{}
	swapper  SwapExecutor
	resetter ResetHandler
	strat    Strategy

	// Finite-domain plug points, nil on the permutation path. A non-nil
	// fd switches solve to the FD loop in fdengine.go.
	fd            FDProblem
	assigner      AssignExecutor
	assignSel     AssignSelector
	assignRestart AssignRestartPolicy

	st State

	res Result

	// checkLeft counts down to the next cancellation/Monitor check. It
	// replaces an int64 modulo on the cumulative iteration counter in
	// the hot loop and is deliberately NOT reset on restarts or
	// teleports: checks fire at exactly the cumulative iteration counts
	// the old Iterations%CheckEvery == 0 test selected, so Monitor call
	// points (and with them the golden traces) do not move.
	checkLeft int64

	bestCost int   // best global cost seen across all runs
	bestCfg  []int // configuration achieving bestCost

	resetIdx  []int // scratch for the generic partial reset
	resetVals []int
}

func (e *engine) solve() Result {
	if e.fd != nil {
		return e.solveFD()
	}
	n := e.p.Size()
	e.res = Result{Cost: CostUnknown, Strategy: e.strat.Name}
	e.bestCost = math.MaxInt

	// Degenerate sizes: a 0- or 1-variable problem has a single
	// configuration; report its cost directly.
	if n < 2 {
		cfg := perm.Identity(n)
		c := e.p.Cost(cfg)
		e.noteBest(c, cfg)
		e.res.Solved = c == 0
		e.finishResult()
		return e.res
	}

	// An already-cancelled context means the caller no longer wants the
	// answer (a multi-walk sweep or a service job cancelled before this
	// walker started): return Interrupted immediately instead of burning
	// the first CheckEvery iterations before noticing.
	if e.cancelled() {
		e.res.Interrupted = true
		e.finishResult()
		return e.res
	}

	e.st.Rand = e.rand
	e.st.Opts = &e.opts
	e.st.Marks = make([]int64, n)
	e.st.Cfg = make([]int, n) // reused across all runs
	e.st.bindProblem(e.p, n)
	e.checkLeft = int64(e.opts.CheckEvery)

	runs := 0
	for {
		runs++
		solved, interrupted := e.runOnce(runs == 1)
		if solved || interrupted {
			e.res.Solved = solved
			e.res.Interrupted = interrupted
			break
		}
		if e.opts.MaxRuns > 0 && runs >= e.opts.MaxRuns {
			break
		}
	}
	e.res.Restarts = runs - 1
	e.finishResult()
	return e.res
}

// finishResult copies the best configuration into the Result.
func (e *engine) finishResult() {
	e.res.Cost = e.bestCost
	if e.res.Solved && e.bestCfg != nil {
		e.res.Solution = perm.Copy(e.bestCfg)
	}
}

// noteBest records cfg if it improves on the best cost seen so far.
func (e *engine) noteBest(cost int, cfg []int) {
	if cost < e.bestCost {
		e.bestCost = cost
		if e.bestCfg == nil {
			e.bestCfg = make([]int, len(cfg))
		}
		copy(e.bestCfg, cfg)
	}
}

// runOnce performs a single run (up to MaxIterations), dispatching each
// iteration to the strategy plug points. It returns solved=true when a
// zero-cost configuration was reached and interrupted=true when the
// context was cancelled mid-run.
func (e *engine) runOnce(first bool) (solved, interrupted bool) {
	o := &e.opts

	if first && o.InitialConfig != nil {
		copy(e.st.Cfg, o.InitialConfig)
	} else {
		// Fresh random permutation into the reused buffer; identity-
		// fill followed by Shuffle consumes the RNG exactly as
		// rand.Perm does, so traces are unchanged.
		for i := range e.st.Cfg {
			e.st.Cfg[i] = i
		}
		e.rand.Shuffle(e.st.Cfg)
	}
	e.st.Cost = e.p.Cost(e.st.Cfg)
	e.st.InvalidateErrors()
	clear(e.st.Marks)
	e.st.Iter = 0
	e.strat.Restart.NewRun(&e.st)
	e.noteBest(e.st.Cost, e.st.Cfg)

	checkEvery := int64(o.CheckEvery)
	for e.st.Cost > 0 && e.st.Iter < o.MaxIterations {
		e.st.Iter++
		e.res.Iterations++
		e.checkLeft--
		if e.checkLeft == 0 {
			e.checkLeft = checkEvery
			if e.cancelled() {
				return false, true
			}
			if o.Monitor != nil {
				d := o.Monitor(e.res.Iterations, e.st.Cost, e.st.Cfg)
				if d.Stop {
					return false, true
				}
				if d.Restart {
					return false, false
				}
				if d.SetConfig != nil && e.adoptConfig(d.SetConfig) {
					e.strat.Restart.NewRun(&e.st)
					continue
				}
			}
		}

		var worst, bestJ, bestCost int
		if o.Exhaustive {
			worst, bestJ, bestCost = e.selectBestPair()
		} else {
			worst = e.strat.Variable.SelectVariable(&e.st)
			bestJ, bestCost = e.strat.Move.SelectMove(&e.st, worst)
		}

		if bestJ != worst {
			// The strategy accepted a move (for the default strategy: a
			// move with cost <= current, possibly a sideways plateau
			// move; Metropolis additionally accepts uphill moves).
			e.doSwap(worst, bestJ, bestCost)
			e.strat.Restart.OnSwap(&e.st, worst, bestJ)
			continue
		}

		// Local minimum: the move selector found no acceptable swap.
		e.res.LocalMinima++
		vi, vj, reset := e.strat.Restart.OnLocalMinimum(&e.st, worst)
		if vj >= 0 {
			// Forced escape move, possibly uphill.
			c := e.p.CostIfSwap(e.st.Cfg, e.st.Cost, vi, vj)
			e.doSwap(vi, vj, c)
			e.res.PlateauEscapes++
			continue
		}
		if reset {
			e.partialReset()
			clear(e.st.Marks)
		}
	}
	if e.st.Cost == 0 {
		e.noteBest(0, e.st.Cfg)
		return true, false
	}
	return false, e.cancelled()
}

// cancelled reports whether the context has been cancelled.
func (e *engine) cancelled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// doSwap executes the swap (i, j), records statistics, updates the
// incremental state of the problem and the best-seen configuration.
func (e *engine) doSwap(i, j, newCost int) {
	e.st.Cfg[i], e.st.Cfg[j] = e.st.Cfg[j], e.st.Cfg[i]
	if e.swapper != nil {
		e.swapper.ExecutedSwap(e.st.Cfg, i, j)
	}
	e.st.Cost = newCost
	e.st.InvalidateErrors()
	e.res.Swaps++
	e.noteBest(newCost, e.st.Cfg)
}

// adoptConfig teleports the walker to cfg (from a Monitor directive),
// clearing tabu marks and recomputing the cost. Invalid configurations
// are rejected.
func (e *engine) adoptConfig(cfg []int) bool {
	if len(cfg) != len(e.st.Cfg) || perm.Validate(cfg) != nil {
		return false
	}
	copy(e.st.Cfg, cfg)
	e.st.Cost = e.p.Cost(e.st.Cfg)
	e.st.InvalidateErrors()
	clear(e.st.Marks)
	e.noteBest(e.st.Cost, e.st.Cfg)
	return true
}

// partialReset perturbs the current configuration: problems implementing
// ResetHandler control their own reset; otherwise a ResetFraction of the
// variables is shuffled and the cost recomputed from scratch.
func (e *engine) partialReset() {
	e.res.Resets++
	if e.resetter != nil {
		e.st.Cost = e.resetter.Reset(e.st.Cfg, e.rand)
	} else {
		n := len(e.st.Cfg)
		k := int(e.opts.ResetFraction * float64(n))
		if k < 2 {
			k = 2
		}
		if e.resetIdx == nil {
			e.resetIdx = make([]int, n)
			e.resetVals = make([]int, n)
		}
		perm.PartialShuffleScratch(e.st.Cfg, k, e.rand, e.resetIdx, e.resetVals)
		e.st.Cost = e.p.Cost(e.st.Cfg)
	}
	e.st.InvalidateErrors()
	e.noteBest(e.st.Cost, e.st.Cfg)
}
