// Package core implements the Adaptive Search constraint-based local
// search engine of Codognet & Diaz (SAGA'01, MIC'03), the sequential
// solver underneath the parallel multi-walk study of Abreu, Caniou,
// Codognet, Diaz & Richoux (PPoPP 2012).
//
// Adaptive Search operates on constraint satisfaction problems encoded
// over permutations. Each constraint contributes an error; errors are
// projected onto variables; each iteration the engine picks the worst
// (highest-error) non-frozen variable and the best swap for it. A
// non-improving best swap marks a local minimum: the variable is frozen
// for a few iterations (an adaptive tabu), and when too many variables
// are frozen the configuration is partially reset. An iteration budget
// triggers a full restart from a fresh random permutation.
//
// Problems plug in through the Problem interface; incremental encodings
// additionally implement SwapExecutor and/or ResetHandler, mirroring the
// Cost_If_Swap / Executed_Swap / Reset hooks of the original C library.
package core

import "repro/internal/rng"

// Problem is a CSP encoded over permutations of [0, n). The engine owns
// the configuration slice and mutates it in place; a Problem must never
// retain it between calls.
//
// Contract:
//   - Cost fully recomputes the global error of cfg and, for problems
//     that keep incremental state (cached row sums, difference tables,
//     ...), rebuilds that state from scratch. Cost must return 0 if and
//     only if cfg is a solution.
//   - CostOnVariable returns the error projected onto variable i under
//     the current configuration. It must be consistent with Cost in the
//     weak sense required by Adaptive Search: variables involved in
//     violated constraints have positive error, satisfied-only variables
//     have error <= any violating variable. It must not mutate state.
//   - CostIfSwap returns the global cost that Cost would return after
//     swapping cfg[i] and cfg[j]; cost is the current global cost so the
//     implementation can compute a delta. It must not mutate state.
type Problem interface {
	// Size returns the number of variables n.
	Size() int
	// Cost returns the global error of cfg; 0 means cfg is a solution.
	Cost(cfg []int) int
	// CostOnVariable returns the error projected onto variable i.
	CostOnVariable(cfg []int, i int) int
	// CostIfSwap returns the global cost after a hypothetical swap of
	// positions i and j, given the current global cost.
	CostIfSwap(cfg []int, cost, i, j int) int
}

// MoveEvaluator is the batched companion of CostIfSwap: problems that
// can evaluate every swap partner of one variable in a single pass
// implement it, and the engine's move selection fills a whole cost row
// through one devirtualized call instead of issuing n-1 interface-
// dispatched CostIfSwap calls per iteration. Implementations typically
// hoist the removal of variable i's own contributions out of the
// partner loop, which a per-call CostIfSwap must redo for every j.
//
// Contract:
//   - CostsIfSwapAll fills out[j], for every j != i, with exactly the
//     value CostIfSwap(cfg, cost, i, j) would return, and out[i] with
//     cost (the stay-put cost). len(out) == len(cfg).
//   - Like CostIfSwap it must not change observable state: cfg and all
//     incremental caches are bit-identical afterwards. Search traces
//     must not depend on which path served the costs.
type MoveEvaluator interface {
	CostsIfSwapAll(cfg []int, cost, i int, out []int)
}

// SwapExecutor is implemented by problems that maintain incremental
// state. ExecutedSwap is invoked after the engine has swapped cfg[i] and
// cfg[j] so the problem can update cached structures in O(1)/O(n) rather
// than recomputing from scratch.
type SwapExecutor interface {
	ExecutedSwap(cfg []int, i, j int)
}

// ErrorVector is the incremental error-cache fast path: problems that
// can report the projected errors of all variables in one call
// implement it, and the engine's worst-variable selection scans the
// resulting vector instead of issuing one CostOnVariable call per
// variable per iteration.
//
// Contract:
//   - ErrorsOnVariables fills out[i] with exactly the value
//     CostOnVariable(cfg, i) would return, for every i; len(out) ==
//     len(cfg). The engine relies on this equivalence: search traces
//     must not depend on which path served the errors.
//   - Implementations typically cache the vector and invalidate or
//     update it through ExecutedSwap (and rebuild it in Cost), so
//     iterations that do not move — frozen local minima — serve the
//     vector for free and iterations that do move pay only for the
//     entries a swap actually changed. A problem that also implements
//     ResetHandler must invalidate the cache in Reset as well: the
//     engine does not call Cost or ExecutedSwap around a custom reset.
type ErrorVector interface {
	ErrorsOnVariables(cfg []int, out []int)
}

// MaintainedErrorVector is the delta-maintenance tier above ErrorVector:
// the problem keeps its error vector current at all times — ExecutedSwap
// updates only the entries a swap touches, and Cost (plus Reset, for
// ResetHandler implementers) rebuilds or revalidates it — so the engine
// skips the blanket invalidation after every swap and serves worst-
// variable selection straight from the live vector, with no per-
// iteration refetch or copy.
//
// Contract:
//   - LiveErrors returns a vector v with v[i] == CostOnVariable(cfg, i)
//     for every i, valid for the configuration the engine last
//     established through Cost / ExecutedSwap / Reset. Implementations
//     may revalidate lazily inside LiveErrors (e.g. after a full Cost
//     recompute), but a swap applied through ExecutedSwap must never
//     leave a stale entry behind.
//   - The returned slice is owned by the problem; callers treat it as
//     read-only and must not retain it across mutations.
//
// Problems that cannot maintain deltas simply do not implement this
// interface and fall back to the invalidate-and-refetch ErrorVector
// path (or, without ErrorVector, to per-variable CostOnVariable calls).
//
// SwapExecutor is embedded because delta maintenance is only possible
// when the problem sees every executed swap: without ExecutedSwap the
// engine would skip invalidation (that is the point of this interface)
// while nothing updated the vector, silently serving stale errors. The
// embedding makes that dependency structural instead of a convention.
type MaintainedErrorVector interface {
	ErrorVector
	SwapExecutor
	LiveErrors(cfg []int) []int
}

// ResetHandler is implemented by problems that want a custom partial
// reset (the C library's Reset hook). Reset perturbs cfg in place and
// returns the new global cost; incremental state must be left consistent
// with the returned cfg (for ErrorVector implementers that includes
// invalidating or refreshing the cached error vector). If a problem
// does not implement ResetHandler the engine applies a generic partial
// shuffle followed by a full Cost recompute.
type ResetHandler interface {
	Reset(cfg []int, r *rng.Rand) int
}

// Tuner is implemented by problems that ship benchmark-specific engine
// parameters, like the per-benchmark settings compiled into the original
// C library. Tune is applied by TunedOptions on top of the engine
// defaults; Solve itself never tunes, so caller-supplied options are
// always authoritative.
type Tuner interface {
	Tune(o *Options)
}

// Namer is implemented by problems that expose a human-readable name
// for harness output. Optional.
type Namer interface {
	Name() string
}
