package core

import (
	"fmt"
	"math"
	"time"
)

// CostUnknown is the sentinel stamped into Result.Cost when a walker
// never evaluated a configuration: a Solve call whose context was
// already cancelled, a virtual-mode walker the budget never reached, or
// a distributed shard synthesized after its worker was lost. Consumers
// that aggregate or report costs must treat it as "no cost known" — it
// must never be summed (it overflows any running total) or surfaced as
// a real cost.
const CostUnknown = math.MaxInt

// Result reports the outcome and the full execution statistics of one
// Solve call. Iteration counts are the machine-independent work measure
// used throughout the performance analysis: the platform simulator and
// the speedup estimators consume Iterations rather than wall time so the
// reproduction does not depend on the local silicon.
type Result struct {
	// Solved reports whether a zero-cost configuration was found.
	Solved bool
	// Solution is the solving permutation (a private copy), or nil.
	Solution []int
	// Cost is the final global cost: 0 when solved, otherwise the cost
	// of the best configuration seen in the last run. A run interrupted
	// before evaluating any configuration (context already cancelled at
	// Solve time) reports CostUnknown.
	Cost int
	// Strategy names the search strategy that produced the result
	// (Options.Strategy resolved through the registry). Useful when
	// heterogeneous multi-walk portfolios mix strategies per walker.
	Strategy string

	// Iterations counts engine iterations summed over all restarts.
	Iterations int64
	// Swaps counts executed swaps (improving moves plus forced
	// local-minimum escapes). Permutation encodings only; always 0 on
	// the finite-domain path.
	Swaps int64
	// Assigns counts executed assignments (improving moves plus forced
	// local-minimum escapes). Finite-domain encodings only; always 0 on
	// the permutation path.
	Assigns int64
	// Flips counts the subset of Assigns landing on binary (two-value)
	// domains — the 0/1 flip moves of Boolean-shaped models.
	Flips int64
	// LocalMinima counts iterations whose best swap did not improve.
	LocalMinima int64
	// PlateauEscapes counts local minima resolved by the probabilistic
	// random-variable move (ProbSelectLocMin) rather than freezing.
	PlateauEscapes int64
	// Resets counts partial resets.
	Resets int64
	// Restarts counts full restarts performed (0 when the first run
	// succeeded).
	Restarts int
	// Elapsed is the wall-clock duration of the Solve call.
	Elapsed time.Duration
	// Interrupted reports that the run stopped on context cancellation
	// rather than on success or budget exhaustion.
	Interrupted bool
}

// String summarizes the result in one line for logs and CLI output.
func (r Result) String() string {
	status := "UNSOLVED"
	if r.Solved {
		status = "SOLVED"
	}
	if r.Interrupted {
		status += " (interrupted)"
	}
	return fmt.Sprintf("%s cost=%d iters=%d swaps=%d locmin=%d resets=%d restarts=%d in %v",
		status, r.Cost, r.Iterations, r.Swaps, r.LocalMinima, r.Resets, r.Restarts, r.Elapsed)
}
