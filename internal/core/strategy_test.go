package core

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// stubVariable wraps the default selector and counts invocations,
// proving the engine dispatches variable selection through the plug
// point.
type stubVariable struct {
	calls *atomic.Int64
	inner AdaptiveVariable
}

func (s stubVariable) SelectVariable(st *State) int {
	s.calls.Add(1)
	return s.inner.SelectVariable(st)
}

// stubMove wraps the default move selector and counts invocations.
type stubMove struct {
	calls *atomic.Int64
	inner MinConflictMove
}

func (s stubMove) SelectMove(st *State, i int) (int, int) {
	s.calls.Add(1)
	return s.inner.SelectMove(st, i)
}

func TestStrategyPlugPointsInvoked(t *testing.T) {
	var varCalls, moveCalls atomic.Int64
	RegisterStrategy("test-stub", func() Strategy {
		return Strategy{
			Name:     "test-stub",
			Variable: stubVariable{calls: &varCalls},
			Move:     stubMove{calls: &moveCalls},
		}
	})
	res, err := Solve(context.Background(), sortProblem{20}, Options{Seed: 1, Strategy: "test-stub"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("stub strategy failed to solve: %v", res)
	}
	if res.Strategy != "test-stub" {
		t.Fatalf("Result.Strategy = %q, want test-stub", res.Strategy)
	}
	if varCalls.Load() != res.Iterations {
		t.Fatalf("VariableSelector called %d times over %d iterations", varCalls.Load(), res.Iterations)
	}
	if moveCalls.Load() != res.Iterations {
		t.Fatalf("MoveSelector called %d times over %d iterations", moveCalls.Load(), res.Iterations)
	}
}

func TestStrategyDefaultMatchesAdaptiveName(t *testing.T) {
	a, err := Solve(context.Background(), sortProblem{25}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), sortProblem{25}, Options{Seed: 5, Strategy: StrategyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != StrategyAdaptive {
		t.Fatalf("default Result.Strategy = %q, want %q", a.Strategy, StrategyAdaptive)
	}
	if a.Iterations != b.Iterations || a.Swaps != b.Swaps || a.Resets != b.Resets {
		t.Fatalf("empty Strategy and %q diverge: %v vs %v", StrategyAdaptive, a, b)
	}
}

func TestStrategyUnknownRejected(t *testing.T) {
	_, err := Solve(context.Background(), sortProblem{5}, Options{Strategy: "no-such-strategy"})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), "no-such-strategy") {
		t.Fatalf("error does not name the strategy: %v", err)
	}
}

func TestStrategyNamesContainBuiltins(t *testing.T) {
	names := StrategyNames()
	want := map[string]bool{StrategyAdaptive: false, StrategyRandomWalk: false, StrategyMetropolis: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in strategy %q missing from StrategyNames: %v", n, names)
		}
	}
}

// TestAlternativeStrategiesSolve: the new walkers must solve the toy
// problem and stay deterministic per seed.
func TestAlternativeStrategiesSolve(t *testing.T) {
	for _, name := range []string{StrategyRandomWalk, StrategyMetropolis} {
		t.Run(name, func(t *testing.T) {
			opts := Options{Seed: 3, Strategy: name}
			a, err := Solve(context.Background(), sortProblem{30}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Solved {
				t.Fatalf("%s failed on sortProblem: %v", name, a)
			}
			if a.Strategy != name {
				t.Fatalf("Result.Strategy = %q, want %q", a.Strategy, name)
			}
			b, err := Solve(context.Background(), sortProblem{30}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.Iterations != b.Iterations || a.Swaps != b.Swaps {
				t.Fatalf("%s not deterministic: %v vs %v", name, a, b)
			}
		})
	}
}

// TestMetropolisAcceptsUphill: on pitProblem every swap is strictly
// worse; the Metropolis rule must still execute uphill moves instead of
// freezing forever.
func TestMetropolisAcceptsUphill(t *testing.T) {
	res, err := Solve(context.Background(), pitProblem{10}, Options{
		Seed:          2,
		Strategy:      StrategyMetropolis,
		MaxIterations: 500,
		MaxRuns:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("pitProblem cannot be solved")
	}
	if res.Swaps == 0 {
		t.Fatalf("Metropolis executed no uphill swaps on an all-uphill landscape: %v", res)
	}
}

// TestRandomWalkHonorsFreeze: the random-walk selector must skip frozen
// variables; exercise it through a full solve with heavy freezing.
func TestRandomWalkHonorsFreeze(t *testing.T) {
	res, err := Solve(context.Background(), sortProblem{40}, Options{
		Seed:         8,
		Strategy:     StrategyRandomWalk,
		FreezeLocMin: 10,
		FreezeSwap:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("random-walk with freezing failed: %v", res)
	}
}

// TestRegisterStrategyPanics: empty names, nil factories and duplicates
// must panic loudly rather than corrupt the registry.
func TestRegisterStrategyPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { RegisterStrategy("", func() Strategy { return Strategy{} }) })
	mustPanic("nil factory", func() { RegisterStrategy("x-nil", nil) })
	mustPanic("duplicate", func() {
		RegisterStrategy(StrategyAdaptive, func() Strategy { return Strategy{} })
	})
}

// TestStateErrorsNilWithoutFastPath: problems without ErrorVector must
// yield a nil error vector so selectors fall back to the scan.
func TestStateErrorsNilWithoutFastPath(t *testing.T) {
	var st State
	st.bindProblem(sortProblem{5}, 5)
	if st.Errors() != nil {
		t.Fatal("State.Errors non-nil for a problem without ErrorVector")
	}
}

// TestStrategyOverridesExhaustive: the exhaustive pair scan bypasses
// the strategy plug points, so an explicitly selected non-default
// strategy takes precedence — the run executes the named strategy (not
// a mislabeled pair scan), trace-identical to the same options without
// Exhaustive.
func TestStrategyOverridesExhaustive(t *testing.T) {
	base := Options{Seed: 3, Strategy: StrategyMetropolis}
	want, err := Solve(context.Background(), sortProblem{30}, base)
	if err != nil {
		t.Fatal(err)
	}
	withEx := base
	withEx.Exhaustive = true
	got, err := Solve(context.Background(), sortProblem{30}, withEx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != StrategyMetropolis {
		t.Fatalf("Result.Strategy = %q, want %q", got.Strategy, StrategyMetropolis)
	}
	if got.Iterations != want.Iterations || got.Swaps != want.Swaps {
		t.Fatalf("Exhaustive not overridden by strategy: %v vs %v", got, want)
	}
	// The default strategy (named or empty) keeps exhaustive semantics:
	// on the sort problem the pair scan fixes at least one element per
	// move, bounding iterations by n.
	for _, s := range []string{"", StrategyAdaptive} {
		res, err := Solve(context.Background(), sortProblem{10}, Options{
			Seed:       1,
			Exhaustive: true,
			Strategy:   s,
		})
		if err != nil || !res.Solved {
			t.Fatalf("Exhaustive with strategy %q: %v %v", s, res, err)
		}
		if res.Iterations > 10 {
			t.Fatalf("Exhaustive with strategy %q took %d iterations, want <= 10", s, res.Iterations)
		}
	}
}

// TestMetropolisDegenerateSize: MoveSelector is a public plug point, so
// MetropolisMove must tolerate sizes the engine itself short-circuits.
// Before the guard, n == 1 panicked via Rand.Intn(0) when sampling a
// swap partner.
func TestMetropolisDegenerateSize(t *testing.T) {
	m := &MetropolisMove{}
	s := NewState(sortProblem{1}, Options{}, 7, nil)
	if j, cost := m.SelectMove(s, 0); j != 0 || cost != s.Cost {
		t.Fatalf("SelectMove on size 1 = (%d, %d), want the stay-put (0, %d)", j, cost, s.Cost)
	}
	// Size 2 has exactly one partner and must still sample normally.
	s2 := NewState(sortProblem{2}, Options{}, 7, []int{1, 0})
	if j, _ := m.SelectMove(s2, 0); j != 1 {
		t.Fatalf("SelectMove on size 2 picked %d, want partner 1", j)
	}
}

// TestSwapCostsMatchesPerCall: the State.SwapCosts helper must agree
// with per-call CostIfSwap on problems implementing MoveEvaluator and
// report nil on problems that do not.
func TestSwapCostsMatchesPerCall(t *testing.T) {
	if costs := NewState(sortProblem{6}, Options{}, 3, nil).SwapCosts(2); costs != nil {
		t.Fatalf("SwapCosts on a plain Problem = %v, want nil", costs)
	}
	p := bulkSortProblem{sortProblem{9}}
	s := NewState(p, Options{}, 3, nil)
	costs := s.SwapCosts(4)
	if costs == nil {
		t.Fatal("SwapCosts on a MoveEvaluator problem returned nil")
	}
	for j := range costs {
		want := s.Cost
		if j != 4 {
			want = p.CostIfSwap(s.Cfg, s.Cost, 4, j)
		}
		if costs[j] != want {
			t.Fatalf("SwapCosts[%d] = %d, want %d", j, costs[j], want)
		}
	}
}

// bulkSortProblem adds a MoveEvaluator view to sortProblem by looping
// over per-call CostIfSwap — the reference semantics of the interface.
type bulkSortProblem struct{ sortProblem }

func (b bulkSortProblem) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	for j := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		out[j] = b.CostIfSwap(cfg, cost, i, j)
	}
}
