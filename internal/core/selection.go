package core

import (
	"math"
)

// This file holds the concrete strategy implementations: the default
// Adaptive Search triple (AdaptiveVariable, MinConflictMove,
// AdaptiveRestart) and the alternative walkers (RandomWalkVariable,
// MetropolisMove) used by heterogeneous portfolios. The exhaustive
// pair scan, which bypasses the variable/move split entirely, lives at
// the bottom as an engine method.

// AdaptiveVariable is the default VariableSelector: it picks the
// non-frozen variable with the highest projected error, breaking ties
// uniformly at random, and falls back to a uniformly random index when
// every variable is frozen — exactly the C library's behavior.
//
// When the problem implements ErrorVector the selector scans the
// incrementally maintained error vector instead of issuing one
// CostOnVariable call per variable; both paths produce identical
// selections (and consume the RNG identically), so the fast path never
// changes a trace.
type AdaptiveVariable struct{}

// SelectVariable implements VariableSelector. One loop serves both
// error sources so the tie-break (and its RNG consumption) cannot
// diverge between the fast and slow paths.
func (AdaptiveVariable) SelectVariable(s *State) int {
	worst := -1
	bestErr := math.MinInt
	ties := 0
	errs := s.Errors()
	for i := range s.Cfg {
		if s.Frozen(i) {
			continue
		}
		var err int
		if errs != nil {
			err = errs[i]
		} else {
			err = s.Problem.CostOnVariable(s.Cfg, i)
		}
		switch {
		case err > bestErr:
			bestErr = err
			worst = i
			ties = 1
		case err == bestErr:
			ties++
			if s.Rand.Intn(ties) == 0 {
				worst = i
			}
		}
	}
	if worst < 0 {
		worst = s.Rand.Intn(len(s.Cfg))
	}
	return worst
}

// MinConflictMove is the default MoveSelector: it scans all swap
// partners for the selected variable and returns the partner minimizing
// the resulting global cost, ties broken uniformly. Following the
// original Select_Var_Min_Conflict, "staying put" (j == i, cost
// unchanged) seeds the candidate pool, so sideways plateau moves
// compete with it on equal footing and strictly-worse moves are never
// taken; j == i on return signals a genuine local minimum. With
// Options.FirstBest set it returns the first strictly improving partner
// immediately.
type MinConflictMove struct{}

// SelectMove implements MoveSelector. When the problem implements
// MoveEvaluator the whole cost row is filled in one batched call and
// scanned here; the scan order, acceptance rules and tie-break RNG
// consumption are identical on both paths, so the fast path never
// changes a trace. FirstBest keeps the per-call path: its whole point
// is to stop evaluating at the first improving candidate, which an
// eager row fill would defeat.
func (MinConflictMove) SelectMove(s *State, i int) (j, cost int) {
	bestJ := i
	bestCost := s.Cost
	ties := 1
	if costs := s.SwapCosts(i); costs != nil && !s.Opts.FirstBest {
		for cand, c := range costs {
			if cand == i {
				continue
			}
			switch {
			case c < bestCost:
				bestCost = c
				bestJ = cand
				ties = 1
			case c == bestCost:
				ties++
				if s.Rand.Intn(ties) == 0 {
					bestJ = cand
				}
			}
		}
		return bestJ, bestCost
	}
	for cand := range s.Cfg {
		if cand == i {
			continue
		}
		c := s.Problem.CostIfSwap(s.Cfg, s.Cost, i, cand)
		switch {
		case c < bestCost:
			bestCost = c
			bestJ = cand
			ties = 1
			if s.Opts.FirstBest {
				return bestJ, bestCost
			}
		case c == bestCost:
			ties++
			if s.Rand.Intn(ties) == 0 {
				bestJ = cand
			}
		}
	}
	return bestJ, bestCost
}

// AdaptiveRestart is the default RestartPolicy, reproducing the C
// library's diversification: on a local minimum it either forces a
// random (possibly uphill) move with probability ProbSelectLocMin, or
// freezes the variable for FreezeLocMin iterations; when more than
// ResetLimit variables have been frozen since the last reset it
// requests a partial reset. Executed swaps freeze both variables for
// FreezeSwap iterations when that option is set.
type AdaptiveRestart struct {
	marked int // variables frozen since the last reset
}

// NewRun implements RestartPolicy.
func (p *AdaptiveRestart) NewRun(s *State) { p.marked = 0 }

// OnSwap implements RestartPolicy.
func (p *AdaptiveRestart) OnSwap(s *State, i, j int) {
	if f := s.Opts.FreezeSwap; f > 0 {
		s.Marks[i] = s.Iter + int64(f)
		s.Marks[j] = s.Iter + int64(f)
		p.marked += 2
	}
}

// OnLocalMinimum implements RestartPolicy.
func (p *AdaptiveRestart) OnLocalMinimum(s *State, i int) (vi, vj int, reset bool) {
	o := s.Opts
	n := len(s.Cfg)
	if o.ProbSelectLocMin > 0 && s.Rand.Float64() < o.ProbSelectLocMin {
		// Probabilistic escape: force the move on a random second
		// variable (possibly uphill), as in the C library's
		// prob_select_loc_min. In exhaustive mode the pair scan did not
		// elect a meaningful variable, so re-pick it at random too.
		if o.Exhaustive {
			i = s.Rand.Intn(n)
		}
		j := s.Rand.Intn(n - 1)
		if j >= i {
			j++
		}
		return i, j, false
	}
	s.Marks[i] = s.Iter + int64(o.FreezeLocMin)
	p.marked++
	if p.marked > o.ResetLimit {
		p.marked = 0
		return i, -1, true
	}
	return i, -1, false
}

// RandomWalkVariable selects a uniformly random non-frozen variable
// (falling back to a fully random index when everything is frozen),
// trading the O(n) error projection scan for maximal diversification.
// Combined with min-conflict moves this yields a random-walk/tabu
// strategy whose runtime distribution differs from classic Adaptive
// Search — useful as a portfolio ingredient.
type RandomWalkVariable struct{}

// SelectVariable implements VariableSelector by reservoir-sampling the
// non-frozen indices in one pass.
func (RandomWalkVariable) SelectVariable(s *State) int {
	pick := -1
	seen := 0
	for i := range s.Cfg {
		if s.Frozen(i) {
			continue
		}
		seen++
		if s.Rand.Intn(seen) == 0 {
			pick = i
		}
	}
	if pick < 0 {
		pick = s.Rand.Intn(len(s.Cfg))
	}
	return pick
}

// MetropolisMove samples Tries random swap partners for the selected
// variable, keeps the cheapest, and applies the Metropolis acceptance
// rule to it: improving and sideways moves are always accepted, uphill
// moves with probability exp(-delta/Temperature). A rejected uphill
// candidate is reported as a local minimum, falling through to the
// surrounding RestartPolicy (with the default AdaptiveRestart that
// still means freezes and resets — the thermal acceptance reduces how
// often that machinery engages, it does not replace it). Compared to
// the exhaustive min-conflict scan this trades O(n) swap evaluations
// per iteration for O(Tries).
type MetropolisMove struct {
	// Temperature is the uphill acceptance temperature T > 0. 0 selects
	// the default of 0.5 (uphill steps of +1 pass ~13% of the time).
	Temperature float64
	// Tries is the number of sampled partners per iteration. 0 selects
	// the default of 8.
	Tries int
}

// SelectMove implements MoveSelector. Degenerate sizes (n < 2) have no
// swap partner to sample: the selector reports a local minimum instead
// of panicking in Rand.Intn(0). The engine never drives such sizes
// (Solve short-circuits them), but MoveSelector is a public plug point,
// so the guard belongs here.
func (m *MetropolisMove) SelectMove(s *State, i int) (j, cost int) {
	n := len(s.Cfg)
	if n < 2 {
		return i, s.Cost
	}
	temp := m.Temperature
	if temp <= 0 {
		temp = 0.5
	}
	tries := m.Tries
	if tries <= 0 {
		tries = 8
	}
	bestJ, bestCost := i, math.MaxInt
	for t := 0; t < tries; t++ {
		cand := s.Rand.Intn(n - 1)
		if cand >= i {
			cand++
		}
		c := s.Problem.CostIfSwap(s.Cfg, s.Cost, i, cand)
		if c < bestCost {
			bestJ, bestCost = cand, c
		}
	}
	if bestCost <= s.Cost {
		return bestJ, bestCost
	}
	if s.Rand.Float64() < math.Exp(-float64(bestCost-s.Cost)/temp) {
		return bestJ, bestCost
	}
	return i, s.Cost
}

// selectBestPair scans every unordered variable pair and returns the
// swap minimizing the resulting cost (Exhaustive mode). "Staying put" is
// in the tie pool exactly as in MinConflictMove; i == j on return
// signals a strict local minimum. Tabu marks are ignored. Exhaustive
// mode replaces the strategy's variable/move selectors wholesale, since
// a pair scan has no separate variable-selection step. Problems
// implementing MoveEvaluator serve rows of the pair matrix through one
// batched call while the upper-triangle remainder of the row is the
// majority of it; the short tail rows, where a full-row bulk fill would
// mostly compute already-scanned pairs, fall back to per-call
// CostIfSwap — as does FirstBest mode, whose early exit an eager row
// fill would defeat. Values, scan order and tie-break RNG consumption
// are identical on every path.
func (e *engine) selectBestPair() (i, j, cost int) {
	n := len(e.st.Cfg)
	bestI, bestJ := 0, 0
	bestCost := e.st.Cost
	ties := 1
	for a := 0; a < n; a++ {
		var costs []int
		if !e.opts.FirstBest && 2*(n-1-a) >= n-1 {
			costs = e.st.SwapCosts(a)
		}
		for b := a + 1; b < n; b++ {
			var c int
			if costs != nil {
				c = costs[b]
			} else {
				c = e.p.CostIfSwap(e.st.Cfg, e.st.Cost, a, b)
			}
			switch {
			case c < bestCost:
				bestCost = c
				bestI, bestJ = a, b
				ties = 1
				if e.opts.FirstBest {
					return bestI, bestJ, bestCost
				}
			case c == bestCost:
				ties++
				if e.rand.Intn(ties) == 0 {
					bestI, bestJ = a, b
				}
			}
		}
	}
	return bestI, bestJ, bestCost
}
