package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/calibrate"
	"repro/internal/rng"
)

// seedCalibration populates a store with a known shifted-exponential
// population for costas at the given size: shift 200, scale 1800
// iterations, at `rate` iterations/second. Saturation speedup is
// 2000/200 = 10, so marginal-gain sizing has room to climb.
func seedCalibration(t *testing.T, size int, rate float64) *calibrate.Store {
	t.Helper()
	st := calibrate.NewStore()
	r := rng.New(4)
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = 200 + 1800*r.ExpFloat64()
	}
	err := st.Record(calibrate.Key{Problem: "costas", Size: size}, calibrate.Batch{
		Source:      "bench",
		RecordedAt:  time.Now(),
		Sequential:  true,
		Walkers:     1,
		Iters:       xs,
		ItersPerSec: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAutoSizeMarginalGain(t *testing.T) {
	st := seedCalibration(t, 10, 1e6)
	s := New(Config{Slots: 8, Calibration: st})
	defer s.Close()
	job, err := s.Submit(Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	// With shift 200 / scale 1800 the curve is still steep at k=8
	// (marginal gain ~9% from 7 to 8), so default MinGain uses the
	// whole pool.
	if job.Request.Walkers != 8 {
		t.Fatalf("chosen walkers = %d, want 8", job.Request.Walkers)
	}
	if job.Request.AutoSize == nil {
		t.Fatal("autosize spec not echoed in snapshot")
	}
	// A strict gain cutoff stops earlier; MaxWalkers caps harder.
	job, err = s.Submit(Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{MinGain: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Request.Walkers >= 8 || job.Request.Walkers < 1 {
		t.Fatalf("strict-gain walkers = %d, want in [1, 8)", job.Request.Walkers)
	}
	job, err = s.Submit(Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{MaxWalkers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Request.Walkers != 2 {
		t.Fatalf("capped walkers = %d, want 2", job.Request.Walkers)
	}
	if got := s.Stats().AutoSized; got != 3 {
		t.Fatalf("autosize_predictions = %d, want 3", got)
	}
}

func TestAutoSizeTargetP95(t *testing.T) {
	// Rate 1e6 iters/s: the sequential P95 is 200+1800*ln(20) ~ 5592
	// iters ~ 5.6ms. A 3ms target (3000 iters) needs
	// 200 + (1800/k)*ln 20 <= 3000 -> k >= 1.93, so k = 2.
	st := seedCalibration(t, 12, 1e6)
	s := New(Config{Slots: 16, Calibration: st})
	defer s.Close()
	job, err := s.Submit(Request{Problem: "costas", Size: 12, AutoSize: &AutoSizeSpec{TargetP95: "3ms"}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Request.Walkers != 2 {
		t.Fatalf("chosen walkers = %d, want 2", job.Request.Walkers)
	}
	// A 250us target is under the 200-iteration floor (200us) plus any
	// exponential tail the pool can shave... at k=16 the P95 is
	// 200 + (1800/16)*ln 20 = 537 iters > 250: unsatisfiable.
	_, err = s.Submit(Request{Problem: "costas", Size: 12, AutoSize: &AutoSizeSpec{TargetP95: "250us"}})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	if errors.Is(err, ErrBadRequest) {
		t.Fatal("unsatisfiable must not read as a bad request")
	}
	st2 := s.Stats()
	if st2.AutoSized != 1 || st2.AutoRejected != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", st2.AutoSized, st2.AutoRejected)
	}
}

func TestAutoSizeRejections(t *testing.T) {
	st := seedCalibration(t, 10, 1e6)
	s := New(Config{Slots: 4, Calibration: st})
	defer s.Close()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"uncalibrated problem", Request{Problem: "queens", AutoSize: &AutoSizeSpec{}}, ErrNoCalibration},
		{"uncalibrated size", Request{Problem: "costas", Size: 11, AutoSize: &AutoSizeSpec{}}, ErrNoCalibration},
		{"explicit walkers too", Request{Problem: "costas", Size: 10, Walkers: 2, AutoSize: &AutoSizeSpec{}}, ErrBadRequest},
		{"portfolio", Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{}, Portfolio: []PortfolioSpec{{Strategy: "adaptive"}}}, ErrBadRequest},
		{"bad target", Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{TargetP95: "soon"}}, ErrBadRequest},
		{"negative target", Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{TargetP95: "-1s"}}, ErrBadRequest},
		{"bad min_gain", Request{Problem: "costas", Size: 10, AutoSize: &AutoSizeSpec{MinGain: 2}}, ErrBadRequest},
		{"unknown strategy", Request{Problem: "costas", Size: 10, Strategy: "nope", AutoSize: &AutoSizeSpec{}}, ErrBadRequest},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// A server with no store at all: typed, not a crash.
	s2 := New(Config{Slots: 2})
	defer s2.Close()
	if _, err := s2.Submit(Request{Problem: "costas", AutoSize: &AutoSizeSpec{}}); !errors.Is(err, ErrNoCalibration) {
		t.Fatalf("storeless autosize: err = %v, want ErrNoCalibration", err)
	}
}

// TestLiveFeed checks that solved jobs flow back into the calibration
// store: single-walker runs as sequential draws, multi-walker wins as
// biased (rate + measured-speedup) evidence only.
func TestLiveFeed(t *testing.T) {
	st := calibrate.NewStore()
	s := New(Config{Slots: 4, Calibration: st})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	key := calibrate.Key{Problem: "costas", Size: 7}
	for i := 0; i < 10; i++ {
		job, err := s.SubmitWait(ctx, Request{Problem: "costas", Size: 7, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if job.State != StateSolved {
			t.Fatalf("run %d: state %s", i, job.State)
		}
	}
	res, err := st.Resolve(key)
	if err != nil {
		t.Fatalf("live feed left store unresolvable: %v", err)
	}
	if res.Samples != 10 {
		t.Fatalf("sequential samples = %d, want 10", res.Samples)
	}
	// Multi-walker solves must NOT add sequential samples.
	job, err := s.SubmitWait(ctx, Request{Problem: "costas", Size: 7, Walkers: 2, Seed: 99})
	if err != nil || job.State != StateSolved {
		t.Fatalf("k=2 run: %v / %v", job.State, err)
	}
	res, err = st.Resolve(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 10 {
		t.Fatalf("k=2 solve leaked into sequential sample: n = %d", res.Samples)
	}
	obs, err := st.ObservedSpeedups(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Walkers != 2 || obs[0].Runs != 1 {
		t.Fatalf("observed speedups = %+v", obs)
	}
}
