package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// State is a job's lifecycle state. Transitions are strictly
//
//	queued -> running -> solved | unsolved | cancelled | failed
//	queued -> cancelled                    (cancelled before dispatch)
//
// and terminal states never change.
type State string

const (
	// StateQueued: admitted, waiting for walker slots.
	StateQueued State = "queued"
	// StateRunning: holding slots, walkers executing.
	StateRunning State = "running"
	// StateSolved: a walker found a solution.
	StateSolved State = "solved"
	// StateUnsolved: every walker exhausted its budget without solving.
	StateUnsolved State = "unsolved"
	// StateCancelled: deadline expiry, explicit cancel, or shutdown.
	StateCancelled State = "cancelled"
	// StateFailed: the run reported an error (bad options, factory
	// failure).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateSolved, StateUnsolved, StateCancelled, StateFailed:
		return true
	}
	return false
}

// Typed errors surfaced by the scheduler; the HTTP layer maps them to
// status codes (ErrQueueFull -> 429, ErrBadRequest -> 400, ErrNotFound
// -> 404, ErrClosed -> 503).
var (
	// ErrQueueFull is the admission-control backpressure signal: the
	// FIFO queue is at capacity and the request was rejected without
	// being admitted. Callers should retry with backoff.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrBadRequest marks a request the registry-driven validation
	// rejected (unknown problem or strategy, out-of-range walkers).
	ErrBadRequest = errors.New("service: bad request")
	// ErrNotFound reports an unknown (or TTL-evicted) job id.
	ErrNotFound = errors.New("service: unknown job")
	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrBadParams marks a request whose problem parameters the
	// benchmark rejected (unknown key, non-positive value, params on a
	// benchmark that takes none). It wraps ErrBadRequest so the HTTP
	// layer still answers 400 while callers can distinguish the cause
	// with errors.Is(err, ErrBadParams).
	ErrBadParams = fmt.Errorf("%w: invalid problem parameters", ErrBadRequest)
)

// Request describes one solve job. The zero value of every optional
// field selects a sensible default at admission time.
type Request struct {
	// Problem names a registered benchmark (see problems.Names).
	Problem string `json:"problem"`
	// Size is the instance parameter; <= 0 selects the benchmark's
	// default size.
	Size int `json:"size,omitempty"`
	// Params carries benchmark-specific problem parameters (the
	// finite-domain benchmarks' knobs, e.g. timetable's slots/rooms/
	// teachers). Unknown or invalid entries are rejected at admission
	// with ErrBadParams; benchmarks that take no parameters reject a
	// non-empty map.
	Params map[string]int `json:"params,omitempty"`
	// Walkers is the number of parallel walks; it is also the number of
	// pool slots the job occupies while running. 0 selects 1; values
	// above the pool size are rejected.
	Walkers int `json:"walkers,omitempty"`
	// AutoSize, when non-nil, asks admission to choose Walkers from the
	// calibrated runtime distribution instead (see AutoSizeSpec). It is
	// mutually exclusive with an explicit Walkers value; the chosen
	// count is written into Walkers and echoed in job snapshots.
	AutoSize *AutoSizeSpec `json:"autosize,omitempty"`
	// Seed seeds the multi-walk master stream. 0 lets the scheduler
	// pick a per-job seed.
	Seed uint64 `json:"seed,omitempty"`
	// Strategy names an engine search strategy ("" selects the
	// problem's tuned default).
	Strategy string `json:"strategy,omitempty"`
	// Portfolio, when non-empty, runs a heterogeneous portfolio and
	// takes precedence over Strategy.
	Portfolio []PortfolioSpec `json:"portfolio,omitempty"`
	// Exchange, when non-nil and Enabled, runs the job in the dependent
	// (communicating) multi-walk scheme: walkers publish their best to
	// a shared elite board and laggards teleport to perturbed elites.
	// On a distributed backend the board is coordinator-hosted and
	// cooperation crosses worker processes. Dependent runs are
	// timing-dependent; independent jobs (the default) keep their
	// bit-for-bit reproducibility.
	Exchange *ExchangeSpec `json:"exchange,omitempty"`
	// MaxIterations bounds each walker run; 0 keeps the tuned default.
	MaxIterations int64 `json:"max_iterations,omitempty"`
	// MaxRuns bounds restarts per walker; 0 keeps the tuned default
	// (unlimited — the job is then bounded by its deadline).
	MaxRuns int `json:"max_runs,omitempty"`
	// TimeoutMS is the job deadline in milliseconds, measured from
	// dispatch (not from submission). 0 selects the scheduler default;
	// values above the configured maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tenant attributes the job for multi-tenant admission: queued jobs
	// compete under weighted-fair scheduling per tenant, and a tenant's
	// concurrent slot usage is capped by its configured quota. ""
	// selects the "default" tenant (weight 1, no quota unless
	// configured).
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the admission class: "high", "normal" or "low"
	// ("" selects "normal"). Classes are strict — a queued high job is
	// always preferred over normal and low — while jobs within one
	// class are ordered by weighted fairness across tenants.
	Priority string `json:"priority,omitempty"`
}

// Priority classes, ordered: lower value dispatches first.
const (
	classHigh = iota
	classNormal
	classLow
)

// classOf maps a request priority string to its class.
func classOf(p string) (int, error) {
	switch p {
	case "", "normal":
		return classNormal, nil
	case "high":
		return classHigh, nil
	case "low":
		return classLow, nil
	default:
		return 0, fmt.Errorf("%w: unknown priority %q (want high, normal or low)", ErrBadRequest, p)
	}
}

// maxTenantLen bounds tenant names; they appear in metrics keys.
const maxTenantLen = 64

// PortfolioSpec assigns a strategy a weighted share of the walkers.
type PortfolioSpec struct {
	Strategy string `json:"strategy"`
	Weight   int    `json:"weight,omitempty"`
}

// ExchangeSpec tunes the dependent multi-walk scheme for one job. The
// zero value of each field selects the multiwalk default (period 1024,
// adopt factor 2.0, perturbation max(2, n/16)).
type ExchangeSpec struct {
	Enabled      bool    `json:"enabled"`
	PeriodIters  int64   `json:"period_iters,omitempty"`
	AdoptFactor  float64 `json:"adopt_factor,omitempty"`
	PerturbSwaps int     `json:"perturb_swaps,omitempty"`
}

// Job is an immutable snapshot of a job's state, safe to retain and
// serialize.
type Job struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Request     Request    `json:"request"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   time.Time  `json:"started_at,omitzero"`
	FinishedAt  time.Time  `json:"finished_at,omitzero"`
	Result      *JobResult `json:"result,omitempty"`
}

// JobResult condenses a multiwalk.Result for transport.
type JobResult struct {
	Solved           bool   `json:"solved"`
	Solution         []int  `json:"solution,omitempty"`
	Winner           int    `json:"winner"`
	WinnerStrategy   string `json:"winner_strategy,omitempty"`
	WinnerIterations int64  `json:"winner_iterations"`
	TotalIterations  int64  `json:"total_iterations"`
	CompletedWalkers int    `json:"completed_walkers"`
	Truncated        bool   `json:"truncated"`
	ElapsedMS        int64  `json:"elapsed_ms"`
	// Adoptions counts elite-configuration adoptions across all
	// walkers (dependent runs only; always 0 for independent jobs).
	Adoptions int64 `json:"adoptions,omitempty"`
	// YieldedWalkers counts walkers that stood down because the board
	// showed the job solved elsewhere — distinguishable from walkers
	// interrupted by cancellation.
	YieldedWalkers int `json:"yielded_walkers,omitempty"`
	// BestCost is the best final cost across walkers that actually ran
	// (0 when solved), or -1 when no walker reported a cost. Walkers
	// synthesized after a lost shard — and walkers a cancelled sweep
	// never reached — carry the core.CostUnknown sentinel, which is
	// never surfaced here as a real cost.
	BestCost int `json:"best_cost"`
}

// condenseResult maps the multiwalk result into the transport shape.
func condenseResult(res *multiwalk.Result) *JobResult {
	if res == nil {
		return nil
	}
	// Copy the solution so snapshots honor Job's immutability contract
	// — every snapshot of one job would otherwise share the stored
	// result's backing array.
	var solution []int
	if res.Solution != nil {
		solution = append([]int(nil), res.Solution...)
	}
	jr := &JobResult{
		Solved:           res.Solved,
		Solution:         solution,
		Winner:           res.Winner,
		WinnerIterations: res.WinnerIterations,
		TotalIterations:  res.TotalIterations,
		CompletedWalkers: res.Completed,
		Truncated:        res.Truncated,
		ElapsedMS:        res.Elapsed.Milliseconds(),
		Adoptions:        res.Adoptions,
	}
	jr.BestCost = -1
	for _, ws := range res.Walkers {
		if ws.Yielded {
			jr.YieldedWalkers++
		}
		// The CostUnknown sentinel (never-ran walkers, lost shards) is
		// "no cost", not a candidate — the audit that keeps math.MaxInt
		// out of every cost summary.
		if ws.Result.Iterations > 0 && ws.Result.Cost != core.CostUnknown {
			if jr.BestCost < 0 || ws.Result.Cost < jr.BestCost {
				jr.BestCost = ws.Result.Cost
			}
		}
	}
	if res.Solved {
		jr.BestCost = 0
	}
	if res.Winner >= 0 && res.Winner < len(res.Walkers) {
		jr.WinnerStrategy = res.Walkers[res.Winner].Result.Strategy
	}
	return jr
}

// normalizeRequest validates req against the problems and strategy
// registries and resolves it into a ready-to-run multi-walk
// configuration. All validation errors wrap ErrBadRequest.
func (s *Scheduler) normalizeRequest(req *Request) (problems.Factory, multiwalk.Options, error) {
	var zero multiwalk.Options
	if req.Problem == "" {
		return nil, zero, fmt.Errorf("%w: missing problem (known: %v)", ErrBadRequest, problems.Names())
	}
	info, err := problems.Describe(req.Problem)
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Size <= 0 {
		req.Size = info.DefaultSize
	}
	factory, err := problems.NewFactoryParams(req.Problem, req.Size, req.Params)
	if err != nil {
		if errors.Is(err, problems.ErrBadParams) {
			return nil, zero, fmt.Errorf("%w: %v", ErrBadParams, err)
		}
		return nil, zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.AutoSize != nil {
		if err := s.autoSize(req); err != nil {
			return nil, zero, err
		}
	}
	if req.Walkers == 0 {
		req.Walkers = 1
	}
	if slots := s.curSlots(); req.Walkers < 0 || req.Walkers > slots {
		return nil, zero, fmt.Errorf("%w: walkers = %d outside [1, %d] (pool size)", ErrBadRequest, req.Walkers, slots)
	}
	if req.MaxIterations < 0 || req.MaxRuns < 0 || req.TimeoutMS < 0 {
		return nil, zero, fmt.Errorf("%w: negative budget", ErrBadRequest)
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if len(req.Tenant) > maxTenantLen {
		return nil, zero, fmt.Errorf("%w: tenant name exceeds %d bytes", ErrBadRequest, maxTenantLen)
	}
	if _, err := classOf(req.Priority); err != nil {
		return nil, zero, err
	}

	// One tuned instance supplies per-problem engine defaults; request
	// fields override on top. The factory (already validated) builds
	// the probe — no second registry lookup or duplicate construction.
	probe, err := factory()
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Finite-domain instances run the domain-reduction pass on the
	// probe at admission time: a provably unsatisfiable model is a
	// synchronous typed rejection (HTTP 422), not a job every walker
	// fails asynchronously. The engine still reduces each walker's own
	// instance before search (reduction is idempotent).
	if dr, ok := probe.(core.DomainReducer); ok {
		if err := dr.ReduceDomains(); err != nil {
			return nil, zero, fmt.Errorf("service: %w", err)
		}
	}
	engine := core.TunedOptions(probe)
	if req.MaxIterations > 0 {
		engine.MaxIterations = req.MaxIterations
	}
	if req.MaxRuns > 0 {
		engine.MaxRuns = req.MaxRuns
	}
	if req.Strategy != "" {
		if !knownStrategy(req.Strategy) {
			return nil, zero, fmt.Errorf("%w: unknown strategy %q (known: %v)", ErrBadRequest, req.Strategy, core.StrategyNames())
		}
		engine.Strategy = req.Strategy
	}

	opts := multiwalk.Options{
		Walkers: req.Walkers,
		Seed:    req.Seed,
		Engine:  engine,
	}
	if req.Exchange != nil && req.Exchange.Enabled {
		opts.Exchange = multiwalk.ExchangeOptions{
			Enabled:      true,
			Period:       req.Exchange.PeriodIters,
			AdoptFactor:  req.Exchange.AdoptFactor,
			PerturbSwaps: req.Exchange.PerturbSwaps,
		}
		// multiwalk's shared exchange validator at admission time, so a
		// degenerate configuration is a 400, not a late job failure.
		if err := opts.Exchange.Validate(); err != nil {
			return nil, zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	prefix := 0
	for i, spec := range req.Portfolio {
		if !knownStrategy(spec.Strategy) {
			return nil, zero, fmt.Errorf("%w: portfolio[%d]: unknown strategy %q (known: %v)", ErrBadRequest, i, spec.Strategy, core.StrategyNames())
		}
		if spec.Weight < 0 {
			return nil, zero, fmt.Errorf("%w: portfolio[%d]: negative weight", ErrBadRequest, i)
		}
		// Mirror multiwalk's reachability rule at admission time so a
		// degenerate mix is a 400, not a late job failure.
		if prefix >= req.Walkers {
			return nil, zero, fmt.Errorf("%w: portfolio[%d] is unreachable with %d walkers", ErrBadRequest, i, req.Walkers)
		}
		w := spec.Weight
		if w == 0 {
			w = 1
		}
		if prefix += w; prefix > req.Walkers {
			prefix = req.Walkers
		}
		entry := engine
		entry.Strategy = spec.Strategy
		opts.Portfolio = append(opts.Portfolio, multiwalk.PortfolioEntry{Weight: spec.Weight, Engine: entry})
	}
	return factory, opts, nil
}

// knownStrategy checks a name against the engine's strategy registry.
func knownStrategy(name string) bool {
	for _, n := range core.StrategyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// timeoutFor resolves the job deadline from the request and the
// scheduler's default/max bounds.
func (s *Scheduler) timeoutFor(req *Request) time.Duration {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}
