package service

import (
	"context"

	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// Backend executes admitted jobs' multi-walk runs. The scheduler owns
// admission (FIFO queue, slot accounting against Slots, deadlines,
// lifecycle); the backend owns execution. Two implementations exist:
// the in-process local pool (the default) and the distributed
// coordinator (internal/dist.Coordinator, selected by cmd/serve
// -workers), which shards each job's walkers over a worker fleet with
// per-worker slot accounting and cross-worker first-solution
// cancellation.
//
// Handing a Backend to New transfers ownership: Scheduler.Close closes
// the backend after the last job has drained.
type Backend interface {
	// Name identifies the backend in logs and metrics.
	Name() string
	// Slots is the backend's total walker-slot capacity; the
	// scheduler's admission control counts against it.
	Slots() int
	// RunJob executes one job. problem/size/params name the instance
	// for backends that rebuild it elsewhere; factory serves in-process
	// backends. opts carries walker count, seed, engine options,
	// portfolio and the Progress hook (which remote backends may
	// replay from final statistics instead of streaming).
	RunJob(ctx context.Context, problem string, size int, params map[string]int, factory problems.Factory, opts multiwalk.Options) (multiwalk.Result, error)
	// Close releases backend resources once the scheduler has drained.
	Close()
}

// CapacityNotifier is implemented by backends whose Slots() varies over
// time (an elastic worker fleet). The scheduler registers a callback at
// construction; the backend invokes it — from any goroutine, holding no
// scheduler-visible locks — whenever capacity may have changed, and the
// scheduler re-reads Slots() in response. Detected structurally so
// Backend implementations outside this package need no import of it.
type CapacityNotifier interface {
	NotifyCapacity(func())
}

// MetricsProvider is implemented by backends with telemetry of their
// own (fleet membership, shard recovery, failover counters). The map is
// merged into Stats.Fleet and served from /metrics.
type MetricsProvider interface {
	BackendMetrics() map[string]int64
}

// localBackend is the default execution backend: one goroutine per
// walker in this process, the paper's one-walker-per-core model sized
// to GOMAXPROCS.
type localBackend struct {
	slots int
}

func (b *localBackend) Name() string { return "local" }
func (b *localBackend) Slots() int   { return b.slots }
func (b *localBackend) Close()       {}

func (b *localBackend) RunJob(ctx context.Context, problem string, size int, params map[string]int, factory problems.Factory, opts multiwalk.Options) (multiwalk.Result, error) {
	return multiwalk.Run(ctx, multiwalk.Factory(factory), opts)
}
