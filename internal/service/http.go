package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/problems"
)

// NewHandler exposes a scheduler as an HTTP JSON API:
//
//	POST /v1/solve              submit a job; {"wait": true} blocks for the result
//	GET  /v1/jobs/{id}          job status / result
//	POST /v1/jobs/{id}/cancel   cancel a queued or running job
//	GET  /v1/problems           registered benchmarks and strategies
//	GET  /healthz               liveness + pool headroom
//	GET  /metrics               expvar-style counters (Stats)
//
// Error responses are {"error": "..."} with ErrQueueFull mapped to 429,
// ErrBadRequest to 400, ErrNotFound to 404, ErrClosed to 503,
// ErrNoCalibration to 409, and both unsatisfiability proofs — a
// domain-reduction one (domain.ErrUnsatisfiable) and an auto-size
// target no walker count can meet (ErrUnsatisfiable) — to 422.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		body, err := decodeSolveBody(r.Body)
		if err != nil {
			writeError(w, err)
			return
		}
		if body.Wait {
			job, err := s.SubmitWait(r.Context(), body.Request)
			if err != nil {
				if job.ID != "" {
					// The client's wait expired but the job is live:
					// hand back its id so it can be polled or
					// cancelled rather than orphaned in the pool.
					w.Header().Set("Location", "/v1/jobs/"+job.ID)
					writeJSON(w, http.StatusRequestTimeout, map[string]any{"error": err.Error(), "job": job})
					return
				}
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, job)
			return
		}
		job, err := s.Submit(body.Request)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /v1/problems", func(w http.ResponseWriter, r *http.Request) {
		names := problems.Names()
		infos := make([]problems.Info, 0, len(names))
		for _, n := range names {
			info, err := problems.Describe(n)
			if err != nil {
				continue
			}
			infos = append(infos, info)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"problems":   infos,
			"strategies": core.StrategyNames(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		status, code := "ok", http.StatusOK
		if s.Closed() {
			status, code = "shutting down", http.StatusServiceUnavailable
		}
		health := map[string]any{
			"status":      status,
			"slots":       st.Slots,
			"slots_busy":  st.SlotsBusy,
			"queue_depth": st.QueueDepth,
		}
		if addr := s.StreamAddr(); addr != "" {
			// Streaming transport discovery: clients that see this dial
			// the persistent progress stream instead of polling GET
			// /v1/jobs/{id}.
			health["stream_addr"] = addr
		}
		writeJSON(w, code, health)
	})
	// Served through expvar.Func so the payload is exactly what a
	// global expvar.Publish of Stats would produce, without touching
	// the process-global registry (which panics on double Publish and
	// would break multi-scheduler tests).
	statsVar := expvar.Func(func() any { return s.Stats() })
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, statsVar.String())
	})
	return mux
}

// solveBody is the POST /v1/solve payload: a Request plus the
// sync/async switch.
type solveBody struct {
	Request
	// Wait makes the call synchronous: the response is the terminal
	// job, not the queued acknowledgement.
	Wait bool `json:"wait,omitempty"`
}

// maxSolveBodyLen caps the solve payload; a request that large is
// garbage long before the scheduler's own validation would say so.
const maxSolveBodyLen = 8 << 20

// decodeSolveBody parses one POST /v1/solve payload. Every decode
// failure wraps ErrBadRequest (the fuzz suite pins this), so transport
// mistakes and admission rejections surface through the same typed
// error the HTTP layer maps to 400.
func decodeSolveBody(r io.Reader) (solveBody, error) {
	var body solveBody
	if err := json.NewDecoder(io.LimitReader(r, maxSolveBodyLen)).Decode(&body); err != nil {
		return solveBody{}, fmt.Errorf("%w: invalid JSON: %v", ErrBadRequest, err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, domain.ErrUnsatisfiable), errors.Is(err, ErrUnsatisfiable):
		// The model is well-formed but provably has no solution — or the
		// auto-size target is provably unreachable at any walker count:
		// the request was understood, the entity cannot be processed.
		code = http.StatusUnprocessableEntity
	case errors.Is(err, ErrNoCalibration):
		// The request is fine but the server lacks the calibration state
		// to honor it; retry after calibrating (409, not 400 — nothing
		// about the request itself is wrong).
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The waiting client went away; 499-style. 408 is the closest
		// standard code.
		code = http.StatusRequestTimeout
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
