package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// gateBackend is a controllable Backend for scheduler-policy tests:
// every RunJob announces its job (by seed — the tests tag jobs with
// distinct explicit seeds) on started, then blocks until the test
// finishes it. Dispatch order is therefore fully observable and fully
// test-controlled.
type gateBackend struct {
	slots    atomic.Int64
	started  chan uint64
	onChange atomic.Pointer[func()]

	mu    sync.Mutex
	gates map[uint64]chan struct{}
}

func newGateBackend(slots int) *gateBackend {
	b := &gateBackend{started: make(chan uint64, 64), gates: make(map[uint64]chan struct{})}
	b.slots.Store(int64(slots))
	return b
}

func (b *gateBackend) Name() string { return "gate" }
func (b *gateBackend) Slots() int   { return int(b.slots.Load()) }
func (b *gateBackend) Close()       {}

func (b *gateBackend) gate(seed uint64) chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.gates[seed]
	if !ok {
		g = make(chan struct{})
		b.gates[seed] = g
	}
	return g
}

// finish releases the job tagged with seed (idempotent per job; each
// test finishes a job once).
func (b *gateBackend) finish(seed uint64) { close(b.gate(seed)) }

func (b *gateBackend) RunJob(ctx context.Context, problem string, size int, params map[string]int, factory problems.Factory, opts multiwalk.Options) (multiwalk.Result, error) {
	b.started <- opts.Seed
	select {
	case <-b.gate(opts.Seed):
	case <-ctx.Done():
	}
	return multiwalk.Result{Winner: -1, Completed: opts.Walkers}, nil
}

func newGateScheduler(t *testing.T, slots int, tenants map[string]TenantPolicy) (*Scheduler, *gateBackend) {
	t.Helper()
	b := newGateBackend(slots)
	s := New(Config{Backend: b, Tenants: tenants, DefaultTimeout: time.Minute})
	t.Cleanup(s.Close)
	return s, b
}

func submitTagged(t *testing.T, s *Scheduler, tenant, priority string, walkers int, seed uint64) {
	t.Helper()
	_, err := s.Submit(Request{
		Problem: "queens", Size: 8, Walkers: walkers, Seed: seed,
		Tenant: tenant, Priority: priority,
	})
	if err != nil {
		t.Fatalf("submit seed %d: %v", seed, err)
	}
}

func nextStart(t *testing.T, b *gateBackend) uint64 {
	t.Helper()
	select {
	case s := <-b.started:
		return s
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a dispatch")
		return 0
	}
}

func expectStart(t *testing.T, b *gateBackend, want uint64) {
	t.Helper()
	if got := nextStart(t, b); got != want {
		t.Fatalf("dispatched seed %d, want %d", got, want)
	}
}

// assertNoStart asserts nothing dispatches within a grace window —
// used to pin "this job must wait" states.
func assertNoStart(t *testing.T, b *gateBackend) {
	t.Helper()
	select {
	case s := <-b.started:
		t.Fatalf("unexpected dispatch of seed %d", s)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestTenantFairnessNoStarvation: a tenant flooding the queue cannot
// starve a newcomer. With one slot held and tenant a's backlog queued
// ahead, tenant b's first job must dispatch next — a has accrued
// service charge, b has none — even though strict FIFO would run all
// of a's backlog first.
func TestTenantFairnessNoStarvation(t *testing.T) {
	s, b := newGateScheduler(t, 1, nil)

	submitTagged(t, s, "a", "", 1, 1)
	expectStart(t, b, 1)
	for _, seed := range []uint64{2, 3, 4} {
		submitTagged(t, s, "a", "", 1, seed)
	}
	submitTagged(t, s, "b", "", 1, 100)

	b.finish(1)
	expectStart(t, b, 100) // the newcomer overtakes the flood
	b.finish(100)
	expectStart(t, b, 2) // then a's backlog resumes in arrival order
	b.finish(2)
	expectStart(t, b, 3)
	b.finish(3)
	expectStart(t, b, 4)
	b.finish(4)
}

// TestTenantWeightedShare: under saturation a weight-4 tenant
// dispatches about four jobs for every one of a weight-1 tenant's.
func TestTenantWeightedShare(t *testing.T) {
	s, b := newGateScheduler(t, 1, map[string]TenantPolicy{
		"gold": {Weight: 4},
	})

	submitTagged(t, s, "warmup", "", 1, 1)
	expectStart(t, b, 1)
	for _, seed := range []uint64{11, 12, 13, 14} {
		submitTagged(t, s, "gold", "", 1, seed)
	}
	for _, seed := range []uint64{21, 22, 23, 24} {
		submitTagged(t, s, "silver", "", 1, seed)
	}

	b.finish(1)
	gold := 0
	var order []uint64
	for i := 0; i < 5; i++ {
		seed := nextStart(t, b)
		order = append(order, seed)
		if seed < 20 {
			gold++
		}
		b.finish(seed)
	}
	// Per dispatch, gold is charged 1/4 and silver 1/1; over the first
	// five post-warmup dispatches the 4:1 ratio must show exactly.
	if gold != 4 {
		t.Fatalf("gold won %d of the first 5 dispatches (want 4): order %v", gold, order)
	}
	for i := 0; i < 3; i++ {
		seed := nextStart(t, b)
		b.finish(seed)
	}
}

// TestPriorityClasses: classes are strict — a queued high job always
// beats normal and low, regardless of arrival order; fairness only
// orders jobs within one class.
func TestPriorityClasses(t *testing.T) {
	s, b := newGateScheduler(t, 1, nil)

	submitTagged(t, s, "t", "normal", 1, 1)
	expectStart(t, b, 1)
	submitTagged(t, s, "t", "low", 1, 30)
	submitTagged(t, s, "t", "normal", 1, 20)
	submitTagged(t, s, "t", "high", 1, 10)

	b.finish(1)
	expectStart(t, b, 10)
	b.finish(10)
	expectStart(t, b, 20)
	b.finish(20)
	expectStart(t, b, 30)
	b.finish(30)
}

// TestTenantQuota: a tenant at its MaxSlots cap waits without blocking
// other tenants — its queued job is skipped, not pinned — and
// dispatches as soon as its own release makes room.
func TestTenantQuota(t *testing.T) {
	s, b := newGateScheduler(t, 2, map[string]TenantPolicy{
		"capped": {MaxSlots: 1},
	})

	submitTagged(t, s, "capped", "", 1, 1)
	expectStart(t, b, 1)
	submitTagged(t, s, "capped", "", 1, 2) // would exceed the quota
	assertNoStart(t, b)
	submitTagged(t, s, "other", "", 1, 3) // behind seed 2 in the queue
	expectStart(t, b, 3)                  // ...but not behind its quota

	b.finish(1) // frees capped's only slot
	expectStart(t, b, 2)
	b.finish(2)
	b.finish(3)
}

// TestElasticPoolGrowth: the scheduler's admission pool tracks the
// backend's live capacity. A job waiting for slots dispatches when the
// fleet grows — no release, poll or resubmission involved.
func TestElasticPoolGrowth(t *testing.T) {
	s, b := newGateScheduler(t, 1, nil)

	submitTagged(t, s, "t", "", 1, 1)
	expectStart(t, b, 1)
	submitTagged(t, s, "t", "", 1, 2)
	assertNoStart(t, b) // pool exhausted

	b.slots.Store(2) // a worker joins
	b.notify()
	expectStart(t, b, 2)

	if st := s.Stats(); st.Slots != 2 {
		t.Fatalf("stats pool size = %d, want 2 after growth", st.Slots)
	}
	b.finish(1)
	b.finish(2)
}

// notify is gateBackend's capacity-change hook; installed by the
// scheduler through the CapacityNotifier interface.
func (b *gateBackend) NotifyCapacity(f func()) { b.onChange.Store(&f) }
func (b *gateBackend) notify() {
	if f := b.onChange.Load(); f != nil {
		(*f)()
	}
}

// TestBestCostExcludesUnknownSentinel is the regression test for the
// CostUnknown audit: walkers that never ran (lost shards, cancelled
// sweeps) carry the math.MaxInt sentinel, which must never surface as
// a real cost in the transport result.
func TestBestCostExcludesUnknownSentinel(t *testing.T) {
	res := &multiwalk.Result{
		Winner: -1, Completed: 1, Truncated: true,
		Walkers: []multiwalk.WalkerStat{
			{Walker: 0, Entry: -1, Result: core.Result{Iterations: 100, Cost: 7}},
			{Walker: 1, Entry: -1, Result: core.Result{Cost: core.CostUnknown, Interrupted: true}},
		},
	}
	jr := condenseResult(res)
	if jr.BestCost != 7 {
		t.Fatalf("BestCost = %d, want 7 (the sentinel leaked)", jr.BestCost)
	}

	allLost := &multiwalk.Result{
		Winner: -1, Truncated: true,
		Walkers: []multiwalk.WalkerStat{
			{Walker: 0, Entry: -1, Result: core.Result{Cost: core.CostUnknown, Interrupted: true}},
		},
	}
	if jr := condenseResult(allLost); jr.BestCost != -1 {
		t.Fatalf("BestCost = %d with no surviving walker, want -1", jr.BestCost)
	}

	solved := &multiwalk.Result{
		Solved: true, Winner: 0, Completed: 1,
		Walkers: []multiwalk.WalkerStat{
			{Walker: 0, Entry: -1, Result: core.Result{Solved: true, Iterations: 42}},
		},
	}
	if jr := condenseResult(solved); jr.BestCost != 0 {
		t.Fatalf("BestCost = %d for a solved job, want 0", jr.BestCost)
	}
}

// TestPriorityValidation: unknown priorities are a 400-class error at
// admission, and tenant names are length-bounded.
func TestPriorityValidation(t *testing.T) {
	s, _ := newGateScheduler(t, 1, nil)
	if _, err := s.Submit(Request{Problem: "queens", Size: 8, Priority: "urgent"}); err == nil {
		t.Fatal("unknown priority admitted")
	}
	long := make([]byte, maxTenantLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.Submit(Request{Problem: "queens", Size: 8, Tenant: string(long)}); err == nil {
		t.Fatal("oversized tenant name admitted")
	}
}
