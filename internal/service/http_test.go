package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPSolveSync(t *testing.T) {
	_, srv := newTestServer(t, Config{Slots: 4})
	req := map[string]any{"problem": "costas", "size": 8, "walkers": 2, "seed": 3, "wait": true}
	resp, body := postJSON(t, srv.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.State != StateSolved || job.Result == nil || !job.Result.Solved {
		t.Fatalf("sync solve: %+v", job)
	}
	if len(job.Result.Solution) != 8 {
		t.Fatalf("solution length %d, want 8", len(job.Result.Solution))
	}
}

func TestHTTPSolveAsyncAndPoll(t *testing.T) {
	_, srv := newTestServer(t, Config{Slots: 4})
	resp, body := postJSON(t, srv.URL+"/v1/solve", map[string]any{"problem": "costas", "size": 8, "seed": 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State != StateQueued {
		t.Fatalf("async ack: %+v", job)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur Job
		if resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &cur); resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if cur.State.Terminal() {
			if cur.State != StateSolved {
				t.Fatalf("job finished %s: %+v", cur.State, cur)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Slots: 2})
	cases := []struct {
		body any
		want int
	}{
		{map[string]any{"problem": "no-such"}, http.StatusBadRequest},
		{map[string]any{"problem": "costas", "walkers": 64}, http.StatusBadRequest},
		{map[string]any{"problem": "costas", "strategy": "nope"}, http.StatusBadRequest},
		{"not an object", http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, body := postJSON(t, srv.URL+"/v1/solve", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("case %d: status = %d, want %d (%s)", i, resp.StatusCode, c.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("case %d: no error payload: %s", i, body)
		}
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	s, srv := newTestServer(t, Config{Slots: 1, QueueDepth: 1})
	hard := map[string]any{"problem": "magic-square", "size": 30, "timeout_ms": 60_000}
	_, body := postJSON(t, srv.URL+"/v1/solve", hard)
	var running Job
	if err := json.Unmarshal(body, &running); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, running.ID, StateRunning)
	if resp, _ := postJSON(t, srv.URL+"/v1/solve", hard); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second job not queued: %d", resp.StatusCode)
	}
	resp, body := postJSON(t, srv.URL+"/v1/solve", hard)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
}

func TestHTTPCancel(t *testing.T) {
	s, srv := newTestServer(t, Config{Slots: 1})
	_, body := postJSON(t, srv.URL+"/v1/solve", map[string]any{"problem": "magic-square", "size": 30, "timeout_ms": 60_000})
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateRunning)
	resp, body := postJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %s", resp.StatusCode, body)
	}
	waitForState(t, s, job.ID, StateCancelled)
}

func TestHTTPJobNotFound(t *testing.T) {
	_, srv := newTestServer(t, Config{Slots: 1})
	if resp := getJSON(t, srv.URL+"/v1/jobs/j999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPProblemsRegistry(t *testing.T) {
	_, srv := newTestServer(t, Config{Slots: 1})
	var out struct {
		Problems []struct {
			Name        string `json:"Name"`
			DefaultSize int    `json:"DefaultSize"`
		} `json:"problems"`
		Strategies []string `json:"strategies"`
	}
	if resp := getJSON(t, srv.URL+"/v1/problems", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := map[string]bool{}
	for _, p := range out.Problems {
		names[p.Name] = true
		if p.DefaultSize <= 0 {
			t.Errorf("problem %s has no default size", p.Name)
		}
	}
	for _, want := range []string{"costas", "magic-square", "all-interval", "perfect-square"} {
		if !names[want] {
			t.Errorf("registry listing missing %q", want)
		}
	}
	if len(out.Strategies) < 3 {
		t.Errorf("strategies = %v, want at least the 3 built-ins", out.Strategies)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	s, srv := newTestServer(t, Config{Slots: 2})
	var health map[string]any
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	if _, err := s.SubmitWait(nil, fastReq()); err != nil {
		t.Fatal(err)
	}
	var st Stats
	if resp := getJSON(t, srv.URL+"/metrics", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if st.Slots != 2 || st.JobsSubmitted != 1 || st.JobsSolved != 1 {
		t.Fatalf("metrics: %+v", st)
	}
	if st.Iterations <= 0 && st.JobsSolved == 1 {
		// A very fast solve may finish inside the first CheckEvery
		// window without a Progress callback; only flag the clearly
		// broken case of negative counters.
		if st.Iterations < 0 {
			t.Fatalf("negative iteration counter: %+v", st)
		}
	}
}

// TestHTTPLoad drives a mixed workload through the real HTTP stack —
// the in-process version of the loadgen smoke scenario.
func TestHTTPLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario skipped in -short mode")
	}
	_, srv := newTestServer(t, Config{Slots: 8, QueueDepth: 128})
	client := srv.Client()
	const n = 60
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			probs := []string{"costas", "queens", "all-interval"}
			sizes := []int{8, 16, 8}
			req := map[string]any{
				"problem": probs[i%3], "size": sizes[i%3],
				"walkers": 1 + i%2, "seed": i + 1, "wait": true,
			}
			buf, _ := json.Marshal(req)
			for {
				resp, err := client.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				var job Job
				err = json.NewDecoder(resp.Body).Decode(&job)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d for %+v", resp.StatusCode, job)
					return
				}
				if !job.State.Terminal() {
					errs <- fmt.Errorf("non-terminal sync response: %+v", job)
					return
				}
				if job.State == StateFailed {
					errs <- fmt.Errorf("job failed: %s", job.Error)
					return
				}
				errs <- nil
				return
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && !strings.Contains(err.Error(), "EOF") {
			t.Error(err)
		}
	}
}

// TestHTTPProblemParams covers the finite-domain params plumbing end to
// end: a timetable job with explicit params solves through POST
// /v1/solve, unknown or invalid params are typed 400 rejections
// (ErrBadParams at the scheduler layer), and a provably unsatisfiable
// instance is a synchronous 422 — the admission-time domain-reduction
// proof, not an asynchronous job failure.
func TestHTTPProblemParams(t *testing.T) {
	s, srv := newTestServer(t, Config{Slots: 4})

	// Happy path: explicit params shape the instance; the job solves.
	req := map[string]any{
		"problem": "timetable", "size": 20, "walkers": 2, "seed": 9, "wait": true,
		"params": map[string]int{"slots": 6, "rooms": 4, "teachers": 4},
	}
	resp, body := postJSON(t, srv.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.State != StateSolved || job.Result == nil || !job.Result.Solved {
		t.Fatalf("params solve: %+v", job)
	}
	if len(job.Result.Solution) != 20 {
		t.Fatalf("solution length %d, want 20", len(job.Result.Solution))
	}
	if job.Request.Params["slots"] != 6 {
		t.Fatalf("params not retained on the job snapshot: %+v", job.Request)
	}

	// Typed param rejections: 400 over HTTP, ErrBadParams at the API.
	badCases := []map[string]any{
		{"problem": "timetable", "params": map[string]int{"professors": 3}},
		{"problem": "timetable", "params": map[string]int{"rooms": 0}},
		{"problem": "queens", "params": map[string]int{"slots": 2}},
	}
	for i, c := range badCases {
		resp, body := postJSON(t, srv.URL+"/v1/solve", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad params case %d: status = %d, want 400 (%s)", i, resp.StatusCode, body)
		}
	}
	var reqBad Request
	reqBad.Problem = "timetable"
	reqBad.Params = map[string]int{"professors": 3}
	if _, err := s.Submit(reqBad); !errors.Is(err, ErrBadParams) || !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Submit bad params: err = %v, want ErrBadParams wrapping ErrBadRequest", err)
	}

	// Unsatisfiable: the reduction proof surfaces synchronously as 422.
	unsat := map[string]any{
		"problem": "timetable", "size": 3,
		"params": map[string]int{"rooms": 1, "slots": 2, "teachers": 3},
	}
	resp, body = postJSON(t, srv.URL+"/v1/solve", unsat)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsat status = %d, want 422 (%s)", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "unsatisfiable") {
		t.Fatalf("unsat error payload: %s", body)
	}
}
