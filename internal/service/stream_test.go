package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

func newStreamServer(t *testing.T, s *Scheduler) *StreamServer {
	t.Helper()
	sv, err := NewStreamServer(s, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Close)
	s.SetStreamAddr(sv.Addr())
	return sv
}

// readUntilTerminal drains progress frames off a subscribed stream
// connection until the job's terminal event arrives.
func readUntilTerminal(t *testing.T, c *wire.Conn, jobID string) wire.Progress {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no terminal frame within deadline")
		}
		typ, payload, err := c.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != wire.TypeProgress {
			t.Fatalf("unexpected frame type %#x", typ)
		}
		p, err := wire.DecodeProgress(payload)
		if err != nil {
			t.Fatal(err)
		}
		if p.Job != jobID {
			t.Fatalf("frame for job %q, subscribed to %q", p.Job, jobID)
		}
		if p.Terminal {
			return p
		}
	}
}

// TestWatchLifecycle pins the event flow a watcher observes: at least
// a running transition, then exactly one terminal event carrying the
// job snapshot — and the channel closes after it.
func TestWatchLifecycle(t *testing.T) {
	s := New(Config{Slots: 4})
	defer s.Close()

	job, err := s.Submit(Request{Problem: "costas", Size: 8, Walkers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Watch(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var sawRunning bool
	var terminal *ProgressEvent
	for ev := range ch {
		if ev.JobID != job.ID {
			t.Fatalf("event for %q, watching %q", ev.JobID, job.ID)
		}
		if ev.State == StateRunning && ev.Walker == -1 {
			sawRunning = true
		}
		if ev.Terminal {
			e := ev
			terminal = &e
		}
	}
	if terminal == nil {
		t.Fatal("channel closed without a terminal event")
	}
	if !sawRunning && terminal.Job.State != StateSolved {
		// A fast solve may finish before the watcher attaches; then the
		// terminal snapshot alone is the contract.
		t.Fatal("no running event and job not solved")
	}
	if terminal.Job == nil || terminal.Job.Result == nil || !terminal.Job.Result.Solved {
		t.Fatalf("terminal event lacks a solved result: %+v", terminal)
	}

	// Watching an already-terminal job yields the terminal event
	// immediately from the snapshot.
	ch2, cancel2, err := s.Watch(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	select {
	case ev, ok := <-ch2:
		if !ok || !ev.Terminal || ev.Job == nil {
			t.Fatalf("late watcher: ok=%v ev=%+v", ok, ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late watcher got no immediate terminal event")
	}

	if _, _, err := s.Watch("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Watch(unknown) = %v, want ErrNotFound", err)
	}
}

// TestStreamServerZeroGetPolling is the transport acceptance test: a
// client that submits async over HTTP and awaits the result over the
// progress stream issues ZERO GET /v1/jobs/{id} polls.
func TestStreamServerZeroGetPolling(t *testing.T) {
	s := New(Config{Slots: 4})
	defer s.Close()
	sv := newStreamServer(t, s)

	var statusGets atomic.Int64
	h := NewHandler(s)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			statusGets.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	// Async submit over plain HTTP, like any client.
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"problem":"costas","size":8,"walkers":2,"seed":11}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status=%d job=%+v", resp.StatusCode, job)
	}

	// Await the result over the stream instead of polling.
	conn, err := wire.Dial(sv.Addr(), "test-client", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteSubscribe(job.ID); err != nil {
		t.Fatal(err)
	}
	p := readUntilTerminal(t, conn, job.ID)
	if p.Error != "" {
		t.Fatalf("terminal error frame: %s", p.Error)
	}
	got := JobFromProgress(&p)
	if got.State != StateSolved || got.Result == nil || !got.Result.Solved {
		t.Fatalf("streamed terminal job: %+v", got)
	}
	if len(got.Result.Solution) != 8 {
		t.Fatalf("solution length %d, want 8", len(got.Result.Solution))
	}

	if n := statusGets.Load(); n != 0 {
		t.Fatalf("client issued %d GET /v1/jobs/{id} polls, want 0", n)
	}

	// The authoritative HTTP record agrees with the streamed snapshot.
	final, err := s.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != got.State || final.Result.Winner != got.Result.Winner {
		t.Fatalf("stream/HTTP divergence: stream=%+v http=%+v", got, final)
	}
}

// TestStreamServerUnknownJob: subscribing to a job the service never
// heard of answers with a terminal error frame instead of silence.
func TestStreamServerUnknownJob(t *testing.T) {
	s := New(Config{Slots: 2})
	defer s.Close()
	sv := newStreamServer(t, s)

	conn, err := wire.Dial(sv.Addr(), "test-client", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteSubscribe("no-such-job"); err != nil {
		t.Fatal(err)
	}
	p := readUntilTerminal(t, conn, "no-such-job")
	if p.Error == "" {
		t.Fatal("terminal frame for unknown job carries no error")
	}
}

// TestStreamServerMultiplex: one connection awaits several jobs at
// once; every subscription gets its own terminal event.
func TestStreamServerMultiplex(t *testing.T) {
	s := New(Config{Slots: 4})
	defer s.Close()
	sv := newStreamServer(t, s)

	conn, err := wire.Dial(sv.Addr(), "test-client", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	want := make(map[string]bool)
	for i := 0; i < 3; i++ {
		job, err := s.Submit(Request{Problem: "costas", Size: 8, Walkers: 1, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		want[job.ID] = true
		if err := conn.WriteSubscribe(job.ID); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	for len(want) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("still waiting on %d terminals", len(want))
		}
		typ, payload, err := conn.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.TypeProgress {
			continue
		}
		p, err := wire.DecodeProgress(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Terminal {
			continue
		}
		if !want[p.Job] {
			t.Fatalf("terminal for unexpected job %q", p.Job)
		}
		if p.Error != "" || p.Result == nil {
			t.Fatalf("terminal for %s: err=%q result=%v", p.Job, p.Error, p.Result)
		}
		delete(want, p.Job)
	}
}
