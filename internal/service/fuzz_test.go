package service

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRequest hammers the POST /v1/solve payload decoder with
// arbitrary bytes: no panics, and every failure wraps the typed
// ErrBadRequest the HTTP layer maps to 400. Deep validation of a
// decoded request stays with the scheduler (normalizeRequest), which
// reports through the same typed error.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"problem":"costas","size":10,"walkers":2,"wait":true}`))
	f.Add([]byte(`{"problem":"queens","portfolio":[{"strategy":"adaptive","weight":2},{"strategy":"metropolis"}],"timeout_ms":500}`))
	f.Add([]byte(`{"problem":7}`))
	f.Add([]byte(`{"walkers":-1,"seed":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := decodeSolveBody(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		// A decoded body must be safely admissible or rejectable: run
		// it through the same validation Submit uses and require any
		// rejection to be the typed bad-request error.
		s := New(Config{Slots: 2, QueueDepth: 1})
		defer s.Close()
		if _, _, err := s.normalizeRequest(&body.Request); err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("normalizeRequest error %v does not wrap ErrBadRequest", err)
		}
	})
}
