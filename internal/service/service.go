// Package service is the serving layer over the multi-walk solver: an
// admission-controlled job scheduler that multiplexes many concurrent
// solve requests over a bounded pool of walker slots.
//
// The design follows the paper's resource model directly: one walker is
// one core's worth of work, so a k-walker job consumes k slots of a
// pool sized to GOMAXPROCS by default. Admission is FIFO with
// queue-depth backpressure (ErrQueueFull), each job runs under its own
// deadline as a child of the scheduler's root context, and finished
// jobs are kept in an in-memory results store until a TTL janitor
// evicts them. See DESIGN.md §7 for the slot-accounting rationale.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// Config sizes the scheduler. The zero value of every field selects a
// default.
type Config struct {
	// Slots is the walker-slot pool size — the number of engine
	// goroutines allowed to run concurrently across all jobs. 0 selects
	// runtime.GOMAXPROCS(0), the paper's one-walker-per-core model.
	// When Backend is set, Slots is ignored: the pool is sized to
	// Backend.Slots().
	Slots int

	// Backend executes admitted jobs. nil selects the in-process local
	// pool. Passing a backend (e.g. a dist.Coordinator over a worker
	// fleet) transfers its ownership to the scheduler: Close closes it.
	Backend Backend
	// QueueDepth bounds the FIFO admission queue; submissions beyond it
	// are rejected with ErrQueueFull. 0 selects 256.
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a request
	// does not set one. 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines. 0 selects 5m.
	MaxTimeout time.Duration
	// ResultTTL is how long a finished job stays retrievable. 0 selects
	// 10m.
	ResultTTL time.Duration
}

func (c *Config) normalize() {
	if c.Backend == nil {
		if c.Slots <= 0 {
			c.Slots = runtime.GOMAXPROCS(0)
		}
		c.Backend = &localBackend{slots: c.Slots}
	}
	// The backend is the single source of truth for capacity; admission
	// control, request validation and /healthz all read cfg.Slots.
	c.Slots = c.Backend.Slots()
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 10 * time.Minute
	}
}

// job is the scheduler-internal mutable job record; Job snapshots are
// derived from it under its lock.
type job struct {
	id      string
	req     Request
	factory problems.Factory
	opts    multiwalk.Options
	timeout time.Duration

	done chan struct{} // closed on reaching a terminal state

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *multiwalk.Result
	err       error
	cancelRun context.CancelFunc // set while running

	// watchMu guards the progress subscribers (see events.go). It is a
	// separate lock from mu so event fan-out never contends with
	// snapshotting; no code path holds both at once.
	watchMu   sync.Mutex
	watchers  []chan ProgressEvent
	watchDone bool
}

// snapshot builds the immutable transport view.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Job{
		ID:          j.id,
		State:       j.state,
		Request:     j.req,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Result:      condenseResult(j.res),
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	return out
}

// Scheduler is the admission-controlled solve service. Create one with
// New, submit jobs with Submit (or SubmitWait), and shut it down with
// Close — which cancels every queued and running job and waits for all
// worker goroutines to exit.
type Scheduler struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // dispatcher + janitor + running jobs

	// mu guards the slot pool, the FIFO queue and the jobs store; cond
	// (on mu) is broadcast whenever any of them changes — new work,
	// freed slots, a cancellation, shutdown — and wakes the dispatcher.
	// The queue is a slice, not a channel, so Submit can never block on
	// a send while holding mu (a queued job that is cancelled leaves
	// the queue immediately, keeping len(q) == nQueued).
	mu        sync.Mutex
	cond      *sync.Cond
	slotsFree int
	q         []*job
	jobs      map[string]*job
	closed    bool
	// nQueued counts admitted-but-not-yet-running jobs; admission
	// control tests it against QueueDepth.
	nQueued int

	seq   atomic.Uint64
	start time.Time

	// Counters for /metrics. Gauges (queued, running, slots busy) live
	// under mu or as atomics; the rest are cumulative.
	mRunning    atomic.Int64
	mSubmitted  atomic.Int64
	mRejected   atomic.Int64
	mSolved     atomic.Int64
	mUnsolved   atomic.Int64
	mCancelled  atomic.Int64
	mFailed     atomic.Int64
	mIterations atomic.Int64
	mAdoptions  atomic.Int64
	mYielded    atomic.Int64

	// streamAddr is the advertised job-progress stream endpoint (set by
	// the serving binary when a StreamServer is attached); "" when the
	// service is HTTP-only. Exposed through /healthz so clients can
	// discover and prefer the streaming transport.
	streamAddr atomic.Value // string
}

// New starts a scheduler with the given configuration.
func New(cfg Config) *Scheduler {
	cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		slotsFree: cfg.Slots,
		jobs:      make(map[string]*job),
		start:     time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(2)
	go s.dispatch()
	go s.janitor()
	return s
}

// Config returns the normalized configuration the scheduler runs with.
func (s *Scheduler) Config() Config { return s.cfg }

// Submit validates and admits a job, returning its queued snapshot.
// The call never blocks on solver work: a full queue fails fast with
// ErrQueueFull, validation failures with ErrBadRequest.
func (s *Scheduler) Submit(req Request) (Job, error) {
	factory, opts, err := s.normalizeRequest(&req)
	if err != nil {
		s.mRejected.Add(1)
		return Job{}, err
	}
	seq := s.seq.Add(1)
	if req.Seed == 0 {
		// A stable per-job default keeps replays possible (the seed is
		// echoed back in the job's Request) without making every
		// unseeded job identical.
		req.Seed = seq*0x9e3779b97f4a7c15 + 1
	}
	opts.Seed = req.Seed
	j := &job{
		id:        fmt.Sprintf("j%06d", seq),
		req:       req,
		factory:   factory,
		opts:      opts,
		timeout:   s.timeoutFor(&req),
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.opts.Progress = s.progressFor(j)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.mRejected.Add(1)
		return Job{}, ErrClosed
	}
	if s.nQueued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.mRejected.Add(1)
		return Job{}, ErrQueueFull
	}
	s.nQueued++
	s.q = append(s.q, j)
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.cond.Broadcast()

	s.mSubmitted.Add(1)
	return j.snapshot(), nil
}

// SubmitWait submits a job and blocks until it reaches a terminal
// state or ctx is cancelled. In the latter case the job keeps running
// and its current snapshot is returned alongside the context error, so
// the caller retains the id to cancel or poll it.
func (s *Scheduler) SubmitWait(ctx context.Context, req Request) (Job, error) {
	snap, err := s.Submit(req)
	if err != nil {
		return Job{}, err
	}
	job, err := s.Wait(ctx, snap.ID)
	if err != nil {
		if cur, gerr := s.Get(snap.ID); gerr == nil {
			return cur, err
		}
		return snap, err
	}
	return job, nil
}

// Get returns a job snapshot by id.
func (s *Scheduler) Get(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.snapshot(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Scheduler) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Cancel cancels a job: a queued job is finalized immediately, a
// running one has its context cancelled (the walkers notice within
// CheckEvery iterations). Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !s.tryCancelQueued(j) {
		j.mu.Lock()
		cancel := j.cancelRun
		running := j.state == StateRunning
		j.mu.Unlock()
		if running && cancel != nil {
			cancel()
		}
	}
	return j.snapshot(), nil
}

// tryCancelQueued finalizes a still-queued job as cancelled, removing
// it from the FIFO so it stops occupying a queue position. The removal
// happens under s.mu — the same lock the dispatcher pops under — so a
// job cannot be both removed here and dispatched. It returns false if
// the job already left the queued state, including when runJob's
// queued→running transition interleaves after the removal scan: the
// transition is re-checked atomically in finalizeQueued, so a job that
// made it to running is never marked cancelled with its walkers still
// live — the caller falls through to cancelRun instead.
func (s *Scheduler) tryCancelQueued(j *job) bool {
	s.mu.Lock()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if !queued {
		s.mu.Unlock()
		return false
	}
	for i, qj := range s.q {
		if qj == j {
			s.q = append(s.q[:i:i], s.q[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if !s.finalizeQueued(j, fmt.Errorf("cancelled while queued")) {
		return false
	}
	s.cond.Broadcast()
	return true
}

// Close shuts the scheduler down: new submissions fail with ErrClosed,
// queued jobs are cancelled, running jobs are interrupted, and Close
// returns once every goroutine has exited.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.cond.Broadcast()
	s.wg.Wait()
	// Every job has drained; the backend (owned since New) goes last.
	s.cfg.Backend.Close()
}

// Closed reports whether Close has been called.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// dispatch is the single admission loop: it pops jobs FIFO, waits for
// the head job's slot demand to be satisfiable, and launches the run.
// A k-walker job at the head of the queue blocks later jobs until its
// k slots free up — strict FIFO, by design (no-starvation for wide
// jobs). The cond is broadcast on every queue/slot/lifecycle change.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.ctx.Err() != nil {
			// Shutdown: cancel everything still queued.
			q := s.q
			s.q = nil
			s.mu.Unlock()
			for _, j := range q {
				s.finalizeQueued(j, fmt.Errorf("scheduler shut down"))
			}
			return
		}
		if len(s.q) == 0 {
			s.cond.Wait()
			continue
		}
		j := s.q[0]
		j.mu.Lock()
		queued := j.state == StateQueued
		j.mu.Unlock()
		if !queued {
			// Defensive only: cancelled jobs leave the queue eagerly
			// under s.mu.
			s.q = s.q[1:]
			continue
		}
		if s.slotsFree < j.opts.Walkers {
			s.cond.Wait()
			continue
		}
		s.slotsFree -= j.opts.Walkers
		s.q = s.q[1:]
		s.mu.Unlock()
		s.wg.Add(1)
		go s.runJob(j)
		s.mu.Lock()
	}
}

// releaseSlots returns a job's slots to the pool.
func (s *Scheduler) releaseSlots(n int) {
	s.mu.Lock()
	s.slotsFree += n
	s.mu.Unlock()
	s.cond.Broadcast()
}

// runJob executes one admitted job, holding its slots for the
// duration.
func (s *Scheduler) runJob(j *job) {
	defer s.wg.Done()
	defer s.releaseSlots(j.opts.Walkers)

	runCtx, cancel := context.WithTimeout(s.ctx, j.timeout)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued {
		// Lost a race with Cancel between acquireSlots and here.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	s.decQueued()
	s.mRunning.Add(1)
	j.emit(ProgressEvent{JobID: j.id, State: StateRunning, Walker: -1})

	res, err := s.cfg.Backend.RunJob(runCtx, j.req.Problem, j.req.Size, j.req.Params, j.factory, j.opts)
	switch {
	case err != nil:
		s.finalize(j, StateFailed, nil, err)
	case res.Solved:
		s.finalize(j, StateSolved, &res, nil)
	case res.Truncated:
		cause := context.Cause(runCtx)
		if cause == context.DeadlineExceeded {
			s.finalize(j, StateCancelled, &res, fmt.Errorf("deadline exceeded after %v", j.timeout))
		} else {
			s.finalize(j, StateCancelled, &res, fmt.Errorf("cancelled"))
		}
	default:
		s.finalize(j, StateUnsolved, &res, nil)
	}
}

// finalizeQueued cancels a job if and only if it is still queued —
// the state re-check happens under j.mu, so a concurrent
// queued→running transition in runJob makes this a no-op rather than
// marking a live run cancelled.
func (s *Scheduler) finalizeQueued(j *job, err error) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCancelled
	j.finished = time.Now()
	j.err = err
	j.mu.Unlock()
	// Counters move before done is closed so a waiter woken by
	// Wait/SubmitWait never reads Stats from before its own job's
	// terminal transition.
	s.decQueued()
	s.mCancelled.Add(1)
	close(j.done)
	j.finishWatchers(j.snapshot())
	return true
}

// finalize moves a job to a terminal state exactly once, updating the
// metric counters and waking waiters.
func (s *Scheduler) finalize(j *job, state State, res *multiwalk.Result, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = state
	j.finished = time.Now()
	j.res = res
	j.err = err
	j.mu.Unlock()

	// Counters move before done is closed (see finalizeQueued).
	switch prev {
	case StateQueued:
		s.decQueued()
	case StateRunning:
		s.mRunning.Add(-1)
	}
	switch state {
	case StateSolved:
		s.mSolved.Add(1)
	case StateUnsolved:
		s.mUnsolved.Add(1)
	case StateCancelled:
		s.mCancelled.Add(1)
	case StateFailed:
		s.mFailed.Add(1)
	}
	if res != nil {
		s.mAdoptions.Add(res.Adoptions)
		for _, ws := range res.Walkers {
			if ws.Yielded {
				s.mYielded.Add(1)
			}
		}
	}
	close(j.done)
	j.finishWatchers(j.snapshot())
}

// decQueued releases one admission-queue position. Callers must not
// hold s.mu (finalize is only ever invoked outside it).
func (s *Scheduler) decQueued() {
	s.mu.Lock()
	s.nQueued--
	s.mu.Unlock()
}

// janitor evicts finished jobs past their ResultTTL.
func (s *Scheduler) janitor() {
	defer s.wg.Done()
	period := s.cfg.ResultTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-tick.C:
			s.evict(now)
		}
	}
}

// evict removes finished jobs whose TTL has expired.
func (s *Scheduler) evict(now time.Time) {
	cutoff := now.Add(-s.cfg.ResultTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		j.mu.Lock()
		dead := j.state.Terminal() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if dead {
			delete(s.jobs, id)
		}
	}
}

// progressEventInterval throttles per-walker milestone events: at most
// one event per walker per interval, so a subscriber sees a steady
// trickle instead of every CheckEvery poll.
const progressEventInterval = 50 * time.Millisecond

// progressFor returns the per-job multiwalk Progress hook feeding the
// global iteration throughput counter and the job's event subscribers.
// Each walker's cumulative count is turned into deltas through a
// per-walker cell — only that walker's goroutine touches it, so a
// plain slice suffices; the shared counter is atomic.
func (s *Scheduler) progressFor(j *job) func(int, int64, int) {
	last := make([]int64, j.opts.Walkers)
	lastEmit := make([]time.Time, j.opts.Walkers)
	return func(w int, iter int64, cost int) {
		s.mIterations.Add(iter - last[w])
		last[w] = iter
		if now := time.Now(); now.Sub(lastEmit[w]) >= progressEventInterval {
			lastEmit[w] = now
			j.emit(ProgressEvent{JobID: j.id, State: StateRunning, Walker: w, Iterations: iter, Cost: cost})
		}
	}
}

// SetStreamAddr records the advertised streaming endpoint for
// discovery via /healthz ("" clears it). The serving binary calls this
// after attaching a StreamServer.
func (s *Scheduler) SetStreamAddr(addr string) { s.streamAddr.Store(addr) }

// StreamAddr returns the advertised streaming endpoint, or "".
func (s *Scheduler) StreamAddr() string {
	if v, ok := s.streamAddr.Load().(string); ok {
		return v
	}
	return ""
}

// Stats is the point-in-time metrics snapshot served by /metrics.
type Stats struct {
	Backend       string `json:"backend"`
	Slots         int    `json:"slots"`
	SlotsBusy     int    `json:"slots_busy"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsQueued    int64  `json:"jobs_queued"`
	JobsRunning   int64  `json:"jobs_running"`
	JobsSubmitted int64  `json:"jobs_submitted"`
	JobsRejected  int64  `json:"jobs_rejected"`
	JobsSolved    int64  `json:"jobs_solved"`
	JobsUnsolved  int64  `json:"jobs_unsolved"`
	JobsCancelled int64  `json:"jobs_cancelled"`
	JobsFailed    int64  `json:"jobs_failed"`
	JobsStored    int    `json:"jobs_stored"`
	// Iterations is the cumulative engine iteration count across every
	// walker of every job. IterationsPerSec is the lifetime average
	// (Iterations over uptime), not a live window — an idle server's
	// rate decays toward zero rather than dropping to it.
	Iterations       int64   `json:"iterations_total"`
	IterationsPerSec float64 `json:"iterations_per_sec"`
	// Adoptions and Yielded aggregate the dependent (Exchange) scheme's
	// activity across finished jobs: elite-configuration adoptions and
	// walkers that stood down because the board showed the job solved
	// elsewhere. Both stay 0 on a fleet running only independent jobs.
	Adoptions int64 `json:"adoptions_total"`
	Yielded   int64 `json:"yielded_total"`
	UptimeMS  int64 `json:"uptime_ms"`
}

// Stats assembles the current metrics snapshot.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	busy := s.cfg.Slots - s.slotsFree
	stored := len(s.jobs)
	depth := s.nQueued
	s.mu.Unlock()
	up := time.Since(s.start)
	iters := s.mIterations.Load()
	st := Stats{
		Backend:       s.cfg.Backend.Name(),
		Slots:         s.cfg.Slots,
		SlotsBusy:     busy,
		QueueDepth:    depth,
		QueueCapacity: s.cfg.QueueDepth,
		JobsQueued:    int64(depth),
		JobsRunning:   s.mRunning.Load(),
		JobsSubmitted: s.mSubmitted.Load(),
		JobsRejected:  s.mRejected.Load(),
		JobsSolved:    s.mSolved.Load(),
		JobsUnsolved:  s.mUnsolved.Load(),
		JobsCancelled: s.mCancelled.Load(),
		JobsFailed:    s.mFailed.Load(),
		JobsStored:    stored,
		Iterations:    iters,
		Adoptions:     s.mAdoptions.Load(),
		Yielded:       s.mYielded.Load(),
		UptimeMS:      up.Milliseconds(),
	}
	if sec := up.Seconds(); sec > 0 {
		st.IterationsPerSec = float64(iters) / sec
	}
	return st
}
