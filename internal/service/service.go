// Package service is the serving layer over the multi-walk solver: an
// admission-controlled job scheduler that multiplexes many concurrent
// solve requests over a bounded pool of walker slots.
//
// The design follows the paper's resource model directly: one walker is
// one core's worth of work, so a k-walker job consumes k slots of a
// pool sized to GOMAXPROCS by default. Admission is queue-depth
// backpressured (ErrQueueFull) and weighted-fair across tenants within
// strict priority classes (see dispatch); each job runs under its own
// deadline as a child of the scheduler's root context, and finished
// jobs are kept in an in-memory results store until a TTL janitor
// evicts them. The slot pool tracks the backend live: an elastic
// backend (dist.Coordinator with a dynamic fleet) resizes it as workers
// join and leave. See DESIGN.md §7 for the slot-accounting rationale.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/calibrate"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// Config sizes the scheduler. The zero value of every field selects a
// default.
type Config struct {
	// Slots is the walker-slot pool size — the number of engine
	// goroutines allowed to run concurrently across all jobs. 0 selects
	// runtime.GOMAXPROCS(0), the paper's one-walker-per-core model.
	// When Backend is set, Slots is ignored: the pool is sized to
	// Backend.Slots().
	Slots int

	// Backend executes admitted jobs. nil selects the in-process local
	// pool. Passing a backend (e.g. a dist.Coordinator over a worker
	// fleet) transfers its ownership to the scheduler: Close closes it.
	Backend Backend
	// QueueDepth bounds the FIFO admission queue; submissions beyond it
	// are rejected with ErrQueueFull. 0 selects 256.
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a request
	// does not set one. 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines. 0 selects 5m.
	MaxTimeout time.Duration
	// ResultTTL is how long a finished job stays retrievable. 0 selects
	// 10m.
	ResultTTL time.Duration
	// Tenants sets per-tenant admission policy, keyed by the tenant
	// name carried on Request.Tenant. Tenants absent from the map (and
	// the implicit "default" tenant) get weight 1 and no quota.
	Tenants map[string]TenantPolicy
	// Calibration, when non-nil, enables the AutoSize admission mode
	// (see autosize.go) and the live calibration feed: solved jobs are
	// recorded back into the store, so serving traffic keeps the
	// runtime-distribution models fresh. nil disables both — AutoSize
	// requests then fail with ErrNoCalibration. The store is shared,
	// not owned: the serving binary persists it across restarts.
	Calibration *calibrate.Store
}

// TenantPolicy shapes one tenant's share of the walker-slot pool.
type TenantPolicy struct {
	// Weight is the tenant's share of capacity under contention: with
	// tenants A (weight 3) and B (weight 1) both saturating the queue, A
	// dispatches about three walker-seconds for every one of B's. 0
	// selects 1.
	Weight int
	// MaxSlots caps the tenant's concurrently held walker slots. A job
	// that would push the tenant past its cap waits without blocking
	// other tenants' admissions. 0 means uncapped.
	MaxSlots int
}

// tenantAcct is the scheduler's per-tenant ledger, guarded by
// Scheduler.mu. charge is the accrued weighted service — walker-seconds
// divided by weight — that the fair-share pick compares across tenants.
type tenantAcct struct {
	weight     int
	maxSlots   int
	inUse      int // walker slots currently held by running jobs
	queued     int
	charge     float64
	dispatched int64
}

func (c *Config) normalize() {
	if c.Backend == nil {
		if c.Slots <= 0 {
			c.Slots = runtime.GOMAXPROCS(0)
		}
		c.Backend = &localBackend{slots: c.Slots}
	}
	// The backend is the single source of truth for capacity; admission
	// control, request validation and /healthz all read cfg.Slots.
	c.Slots = c.Backend.Slots()
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 10 * time.Minute
	}
}

// job is the scheduler-internal mutable job record; Job snapshots are
// derived from it under its lock.
type job struct {
	id      string
	req     Request
	factory problems.Factory
	opts    multiwalk.Options
	timeout time.Duration
	tenant  string
	class   int // priority class, from classOf

	done chan struct{} // closed on reaching a terminal state

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *multiwalk.Result
	err       error
	cancelRun context.CancelFunc // set while running

	// watchMu guards the progress subscribers (see events.go). It is a
	// separate lock from mu so event fan-out never contends with
	// snapshotting; no code path holds both at once.
	watchMu   sync.Mutex
	watchers  []chan ProgressEvent
	watchDone bool
}

// snapshot builds the immutable transport view.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Job{
		ID:          j.id,
		State:       j.state,
		Request:     j.req,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Result:      condenseResult(j.res),
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	return out
}

// Scheduler is the admission-controlled solve service. Create one with
// New, submit jobs with Submit (or SubmitWait), and shut it down with
// Close — which cancels every queued and running job and waits for all
// worker goroutines to exit.
type Scheduler struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // dispatcher + janitor + running jobs

	// mu guards the slot pool, the admission queue, the tenant ledgers
	// and the jobs store; cond (on mu) is broadcast whenever any of them
	// changes — new work, freed slots, a capacity change from the
	// backend, a cancellation, shutdown — and wakes the dispatcher. The
	// queue is a slice, not a channel, so Submit can never block on a
	// send while holding mu (a queued job that is cancelled leaves the
	// queue immediately, keeping len(q) == nQueued).
	mu        sync.Mutex
	cond      *sync.Cond
	slots     int // live pool size, synced from Backend.Slots()
	slotsFree int
	q         []*job
	jobs      map[string]*job
	tenants   map[string]*tenantAcct
	// pinned is the dispatch candidate waiting for slots to accumulate.
	// While set, releases flow toward it rather than leaking to narrower
	// jobs behind it — the no-starvation guarantee for wide jobs. Only a
	// strictly higher priority class overrides a pin.
	pinned *job
	closed bool
	// nQueued counts admitted-but-not-yet-running jobs; admission
	// control tests it against QueueDepth.
	nQueued int

	seq   atomic.Uint64
	start time.Time

	// Counters for /metrics. Gauges (queued, running, slots busy) live
	// under mu or as atomics; the rest are cumulative.
	mRunning    atomic.Int64
	mSubmitted  atomic.Int64
	mRejected   atomic.Int64
	mSolved     atomic.Int64
	mUnsolved   atomic.Int64
	mCancelled  atomic.Int64
	mFailed     atomic.Int64
	mIterations atomic.Int64
	mAdoptions  atomic.Int64
	mYielded    atomic.Int64
	// Auto-size outcomes: predictions that chose a walker count, and
	// typed rejections (no calibration / unsatisfiable target).
	mAutoSized    atomic.Int64
	mAutoRejected atomic.Int64

	// streamAddr is the advertised job-progress stream endpoint (set by
	// the serving binary when a StreamServer is attached); "" when the
	// service is HTTP-only. Exposed through /healthz so clients can
	// discover and prefer the streaming transport.
	streamAddr atomic.Value // string
}

// New starts a scheduler with the given configuration.
func New(cfg Config) *Scheduler {
	cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		slots:     cfg.Slots,
		slotsFree: cfg.Slots,
		jobs:      make(map[string]*job),
		tenants:   make(map[string]*tenantAcct),
		start:     time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	// An elastic backend pushes capacity changes; the dispatcher re-syncs
	// the pool and re-picks on every wake, so a worker joining mid-queue
	// unblocks waiting jobs without polling.
	if cn, ok := cfg.Backend.(CapacityNotifier); ok {
		cn.NotifyCapacity(func() {
			s.mu.Lock()
			s.syncSlotsLocked()
			s.mu.Unlock()
			s.cond.Broadcast()
		})
	}
	s.wg.Add(2)
	go s.dispatch()
	go s.janitor()
	return s
}

// syncSlotsLocked reconciles the slot pool with the backend's current
// capacity. Shrinks can drive slotsFree temporarily negative while
// running jobs still hold slots on lost workers; releases restore it.
func (s *Scheduler) syncSlotsLocked() {
	if cur := s.cfg.Backend.Slots(); cur != s.slots {
		s.slotsFree += cur - s.slots
		s.slots = cur
	}
}

// curSlots returns the live pool size (admission validates against it).
func (s *Scheduler) curSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncSlotsLocked()
	return s.slots
}

// tenantLocked returns (creating on first use) the tenant's ledger,
// seeded from the configured policy. Callers hold s.mu.
func (s *Scheduler) tenantLocked(name string) *tenantAcct {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantAcct{weight: 1}
		if pol, ok := s.cfg.Tenants[name]; ok {
			if pol.Weight > 0 {
				t.weight = pol.Weight
			}
			if pol.MaxSlots > 0 {
				t.maxSlots = pol.MaxSlots
			}
		}
		s.tenants[name] = t
	}
	return t
}

// Config returns the normalized configuration the scheduler runs with.
func (s *Scheduler) Config() Config { return s.cfg }

// Submit validates and admits a job, returning its queued snapshot.
// The call never blocks on solver work: a full queue fails fast with
// ErrQueueFull, validation failures with ErrBadRequest.
func (s *Scheduler) Submit(req Request) (Job, error) {
	factory, opts, err := s.normalizeRequest(&req)
	if err != nil {
		s.mRejected.Add(1)
		return Job{}, err
	}
	seq := s.seq.Add(1)
	if req.Seed == 0 {
		// A stable per-job default keeps replays possible (the seed is
		// echoed back in the job's Request) without making every
		// unseeded job identical.
		req.Seed = seq*0x9e3779b97f4a7c15 + 1
	}
	opts.Seed = req.Seed
	class, _ := classOf(req.Priority) // validated by normalizeRequest
	j := &job{
		id:        fmt.Sprintf("j%06d", seq),
		req:       req,
		factory:   factory,
		opts:      opts,
		timeout:   s.timeoutFor(&req),
		tenant:    req.Tenant,
		class:     class,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.opts.Progress = s.progressFor(j)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.mRejected.Add(1)
		return Job{}, ErrClosed
	}
	if s.nQueued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.mRejected.Add(1)
		return Job{}, ErrQueueFull
	}
	s.nQueued++
	s.tenantLocked(j.tenant).queued++
	s.q = append(s.q, j)
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.cond.Broadcast()

	s.mSubmitted.Add(1)
	return j.snapshot(), nil
}

// SubmitWait submits a job and blocks until it reaches a terminal
// state or ctx is cancelled. In the latter case the job keeps running
// and its current snapshot is returned alongside the context error, so
// the caller retains the id to cancel or poll it.
func (s *Scheduler) SubmitWait(ctx context.Context, req Request) (Job, error) {
	snap, err := s.Submit(req)
	if err != nil {
		return Job{}, err
	}
	job, err := s.Wait(ctx, snap.ID)
	if err != nil {
		if cur, gerr := s.Get(snap.ID); gerr == nil {
			return cur, err
		}
		return snap, err
	}
	return job, nil
}

// Get returns a job snapshot by id.
func (s *Scheduler) Get(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.snapshot(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Scheduler) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Cancel cancels a job: a queued job is finalized immediately, a
// running one has its context cancelled (the walkers notice within
// CheckEvery iterations). Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !s.tryCancelQueued(j) {
		j.mu.Lock()
		cancel := j.cancelRun
		running := j.state == StateRunning
		j.mu.Unlock()
		if running && cancel != nil {
			cancel()
		}
	}
	return j.snapshot(), nil
}

// tryCancelQueued finalizes a still-queued job as cancelled, removing
// it from the FIFO so it stops occupying a queue position. The removal
// happens under s.mu — the same lock the dispatcher pops under — so a
// job cannot be both removed here and dispatched. It returns false if
// the job already left the queued state, including when runJob's
// queued→running transition interleaves after the removal scan: the
// transition is re-checked atomically in finalizeQueued, so a job that
// made it to running is never marked cancelled with its walkers still
// live — the caller falls through to cancelRun instead.
func (s *Scheduler) tryCancelQueued(j *job) bool {
	s.mu.Lock()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if !queued {
		s.mu.Unlock()
		return false
	}
	for i, qj := range s.q {
		if qj == j {
			s.q = append(s.q[:i:i], s.q[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if !s.finalizeQueued(j, fmt.Errorf("cancelled while queued")) {
		return false
	}
	s.cond.Broadcast()
	return true
}

// Close shuts the scheduler down: new submissions fail with ErrClosed,
// queued jobs are cancelled, running jobs are interrupted, and Close
// returns once every goroutine has exited.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.cond.Broadcast()
	s.wg.Wait()
	// Every job has drained; the backend (owned since New) goes last.
	s.cfg.Backend.Close()
}

// Closed reports whether Close has been called.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// dispatch is the single admission loop. Each round it re-syncs the
// slot pool with the backend (elastic fleets change capacity between
// rounds), picks a candidate under weighted-fair multi-tenant rules
// (see pickLocked), and either launches it or pins it while its slot
// demand accumulates. A pinned wide job blocks later dispatches until
// it fits — the no-starvation guarantee FIFO used to provide — except
// that a strictly higher priority class may take the pin over. The
// cond is broadcast on every queue/slot/capacity/lifecycle change.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.ctx.Err() != nil {
			// Shutdown: cancel everything still queued.
			q := s.q
			s.q = nil
			s.mu.Unlock()
			for _, j := range q {
				s.finalizeQueued(j, fmt.Errorf("scheduler shut down"))
			}
			return
		}
		s.syncSlotsLocked()
		j := s.pickLocked()
		if j == nil {
			s.cond.Wait()
			continue
		}
		if s.slots > 0 && j.opts.Walkers > s.slots {
			// The fleet shrank below the job's width after admission: it
			// can never fit, so fail it rather than wedging the queue.
			// (An empty pool is transient — workers rejoin — so jobs
			// wait it out instead.)
			s.removeQueuedLocked(j)
			s.mu.Unlock()
			s.finalizeQueued(j, fmt.Errorf("pool shrank to %d slots below the job's %d walkers", s.slots, j.opts.Walkers))
			s.mu.Lock()
			continue
		}
		if s.slotsFree < j.opts.Walkers {
			s.pinned = j
			s.cond.Wait()
			continue
		}
		s.pinned = nil
		s.removeQueuedLocked(j)
		s.slotsFree -= j.opts.Walkers
		t := s.tenantLocked(j.tenant)
		t.inUse += j.opts.Walkers
		t.dispatched++
		// An up-front charge of one walker-second-equivalent per walker
		// moves the fairness needle even for near-instant jobs, so a
		// tenant flooding short jobs cannot stay at zero accrued service.
		t.charge += float64(j.opts.Walkers) / float64(t.weight)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.runJob(j)
		s.mu.Lock()
	}
}

// pickLocked selects the next dispatch candidate: the earliest-arrived
// job of each (tenant, class) pair is a head; quota-blocked heads are
// skipped (a capped tenant never blocks others); among the rest the
// highest class wins, and within a class the tenant with the least
// accrued weighted service — ties keep the earlier arrival. A valid
// pinned candidate is returned unless a strictly higher class waits.
// Callers hold s.mu.
func (s *Scheduler) pickLocked() *job {
	pinned := s.pinned
	if pinned != nil && (!s.inQueueLocked(pinned) || s.quotaBlockedLocked(pinned)) {
		// The pin lapsed: cancelled out of the queue, or its tenant hit
		// quota and must not wedge the pool.
		s.pinned = nil
		pinned = nil
	}
	type head struct {
		tenant string
		class  int
	}
	seen := make(map[head]bool)
	var best *job
	var bestT *tenantAcct
	for _, j := range s.q {
		k := head{j.tenant, j.class}
		if seen[k] {
			continue
		}
		seen[k] = true
		if s.quotaBlockedLocked(j) {
			continue
		}
		t := s.tenantLocked(j.tenant)
		switch {
		case best == nil:
			best, bestT = j, t
		case j.class != best.class:
			if j.class < best.class {
				best, bestT = j, t
			}
		case t.charge < bestT.charge:
			best, bestT = j, t
		}
	}
	if pinned != nil && (best == nil || best.class >= pinned.class) {
		return pinned
	}
	return best
}

// quotaBlockedLocked reports whether dispatching j now would push its
// tenant past MaxSlots. Callers hold s.mu.
func (s *Scheduler) quotaBlockedLocked(j *job) bool {
	t := s.tenantLocked(j.tenant)
	return t.maxSlots > 0 && t.inUse+j.opts.Walkers > t.maxSlots
}

// inQueueLocked reports whether j is still in the admission queue.
func (s *Scheduler) inQueueLocked(j *job) bool {
	for _, qj := range s.q {
		if qj == j {
			return true
		}
	}
	return false
}

// removeQueuedLocked removes j from the admission queue.
func (s *Scheduler) removeQueuedLocked(j *job) {
	for i, qj := range s.q {
		if qj == j {
			s.q = append(s.q[:i:i], s.q[i+1:]...)
			return
		}
	}
}

// releaseSlots returns a job's slots to the pool and settles its
// tenant's weighted-service charge for the walker-seconds consumed.
func (s *Scheduler) releaseSlots(j *job) {
	j.mu.Lock()
	started := j.started
	j.mu.Unlock()
	var elapsed float64
	if !started.IsZero() {
		elapsed = time.Since(started).Seconds()
	}
	s.mu.Lock()
	s.slotsFree += j.opts.Walkers
	t := s.tenantLocked(j.tenant)
	t.inUse -= j.opts.Walkers
	t.charge += float64(j.opts.Walkers) * elapsed / float64(t.weight)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// runJob executes one admitted job, holding its slots for the
// duration.
func (s *Scheduler) runJob(j *job) {
	defer s.wg.Done()
	defer s.releaseSlots(j)

	runCtx, cancel := context.WithTimeout(s.ctx, j.timeout)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued {
		// Lost a race with Cancel between acquireSlots and here.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	s.decQueued(j)
	s.mRunning.Add(1)
	j.emit(ProgressEvent{JobID: j.id, State: StateRunning, Walker: -1})

	res, err := s.cfg.Backend.RunJob(runCtx, j.req.Problem, j.req.Size, j.req.Params, j.factory, j.opts)
	switch {
	case err != nil:
		s.finalize(j, StateFailed, nil, err)
	case res.Solved:
		s.finalize(j, StateSolved, &res, nil)
	case res.Truncated:
		cause := context.Cause(runCtx)
		if cause == context.DeadlineExceeded {
			s.finalize(j, StateCancelled, &res, fmt.Errorf("deadline exceeded after %v", j.timeout))
		} else {
			s.finalize(j, StateCancelled, &res, fmt.Errorf("cancelled"))
		}
	default:
		s.finalize(j, StateUnsolved, &res, nil)
	}
}

// finalizeQueued cancels a job if and only if it is still queued —
// the state re-check happens under j.mu, so a concurrent
// queued→running transition in runJob makes this a no-op rather than
// marking a live run cancelled.
func (s *Scheduler) finalizeQueued(j *job, err error) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCancelled
	j.finished = time.Now()
	j.err = err
	j.mu.Unlock()
	// Counters move before done is closed so a waiter woken by
	// Wait/SubmitWait never reads Stats from before its own job's
	// terminal transition.
	s.decQueued(j)
	s.mCancelled.Add(1)
	close(j.done)
	j.finishWatchers(j.snapshot())
	return true
}

// finalize moves a job to a terminal state exactly once, updating the
// metric counters and waking waiters.
func (s *Scheduler) finalize(j *job, state State, res *multiwalk.Result, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = state
	j.finished = time.Now()
	j.res = res
	j.err = err
	j.mu.Unlock()

	// Counters move before done is closed (see finalizeQueued).
	switch prev {
	case StateQueued:
		s.decQueued(j)
	case StateRunning:
		s.mRunning.Add(-1)
	}
	switch state {
	case StateSolved:
		s.mSolved.Add(1)
	case StateUnsolved:
		s.mUnsolved.Add(1)
	case StateCancelled:
		s.mCancelled.Add(1)
	case StateFailed:
		s.mFailed.Add(1)
	}
	if res != nil {
		s.mAdoptions.Add(res.Adoptions)
		for _, ws := range res.Walkers {
			if ws.Yielded {
				s.mYielded.Add(1)
			}
		}
		if state == StateSolved {
			s.recordOutcome(j, &jobOutcome{
				solved:           res.Solved,
				winnerIterations: res.WinnerIterations,
				totalIterations:  res.TotalIterations,
				elapsed:          res.Elapsed,
			})
		}
	}
	close(j.done)
	j.finishWatchers(j.snapshot())
}

// decQueued releases one admission-queue position and the tenant's
// queued count. Callers must not hold s.mu (finalize is only ever
// invoked outside it).
func (s *Scheduler) decQueued(j *job) {
	s.mu.Lock()
	s.nQueued--
	s.tenantLocked(j.tenant).queued--
	s.mu.Unlock()
}

// janitor evicts finished jobs past their ResultTTL.
func (s *Scheduler) janitor() {
	defer s.wg.Done()
	period := s.cfg.ResultTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-tick.C:
			s.evict(now)
		}
	}
}

// evict removes finished jobs whose TTL has expired.
func (s *Scheduler) evict(now time.Time) {
	cutoff := now.Add(-s.cfg.ResultTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		j.mu.Lock()
		dead := j.state.Terminal() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if dead {
			delete(s.jobs, id)
		}
	}
}

// progressEventInterval throttles per-walker milestone events: at most
// one event per walker per interval, so a subscriber sees a steady
// trickle instead of every CheckEvery poll.
const progressEventInterval = 50 * time.Millisecond

// progressFor returns the per-job multiwalk Progress hook feeding the
// global iteration throughput counter and the job's event subscribers.
// Each walker's cumulative count is turned into deltas through a
// per-walker cell — only that walker's goroutine touches it, so a
// plain slice suffices; the shared counter is atomic.
func (s *Scheduler) progressFor(j *job) func(int, int64, int) {
	last := make([]int64, j.opts.Walkers)
	lastEmit := make([]time.Time, j.opts.Walkers)
	return func(w int, iter int64, cost int) {
		s.mIterations.Add(iter - last[w])
		last[w] = iter
		if now := time.Now(); now.Sub(lastEmit[w]) >= progressEventInterval {
			lastEmit[w] = now
			j.emit(ProgressEvent{JobID: j.id, State: StateRunning, Walker: w, Iterations: iter, Cost: cost})
		}
	}
}

// SetStreamAddr records the advertised streaming endpoint for
// discovery via /healthz ("" clears it). The serving binary calls this
// after attaching a StreamServer.
func (s *Scheduler) SetStreamAddr(addr string) { s.streamAddr.Store(addr) }

// StreamAddr returns the advertised streaming endpoint, or "".
func (s *Scheduler) StreamAddr() string {
	if v, ok := s.streamAddr.Load().(string); ok {
		return v
	}
	return ""
}

// Stats is the point-in-time metrics snapshot served by /metrics.
type Stats struct {
	Backend       string `json:"backend"`
	Slots         int    `json:"slots"`
	SlotsBusy     int    `json:"slots_busy"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsQueued    int64  `json:"jobs_queued"`
	JobsRunning   int64  `json:"jobs_running"`
	JobsSubmitted int64  `json:"jobs_submitted"`
	JobsRejected  int64  `json:"jobs_rejected"`
	JobsSolved    int64  `json:"jobs_solved"`
	JobsUnsolved  int64  `json:"jobs_unsolved"`
	JobsCancelled int64  `json:"jobs_cancelled"`
	JobsFailed    int64  `json:"jobs_failed"`
	JobsStored    int    `json:"jobs_stored"`
	// Iterations is the cumulative engine iteration count across every
	// walker of every job. IterationsPerSec is the lifetime average
	// (Iterations over uptime), not a live window — an idle server's
	// rate decays toward zero rather than dropping to it.
	Iterations       int64   `json:"iterations_total"`
	IterationsPerSec float64 `json:"iterations_per_sec"`
	// Adoptions and Yielded aggregate the dependent (Exchange) scheme's
	// activity across finished jobs: elite-configuration adoptions and
	// walkers that stood down because the board showed the job solved
	// elsewhere. Both stay 0 on a fleet running only independent jobs.
	Adoptions int64 `json:"adoptions_total"`
	Yielded   int64 `json:"yielded_total"`
	// AutoSized counts AutoSize requests admission resolved to a
	// predictor-chosen walker count; AutoRejected counts typed
	// auto-size rejections (no calibration, unsatisfiable target). Both
	// are always present — 0 on a server that never saw an AutoSize
	// request — so dashboards can rely on the keys existing.
	AutoSized    int64 `json:"autosize_predictions"`
	AutoRejected int64 `json:"autosize_rejections"`
	UptimeMS     int64 `json:"uptime_ms"`
	// Tenants is the per-tenant admission ledger (populated once a
	// tenant has submitted at least one job).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Fleet carries the backend's own gauges and counters when it
	// exposes them (a dist.Coordinator reports worker states, recovered
	// shards, dispatch failovers, ...). Absent for the local pool.
	Fleet map[string]int64 `json:"fleet,omitempty"`
}

// TenantStats is one tenant's admission ledger snapshot.
type TenantStats struct {
	Weight     int     `json:"weight"`
	MaxSlots   int     `json:"max_slots,omitempty"`
	SlotsBusy  int     `json:"slots_busy"`
	Queued     int     `json:"queued"`
	Dispatched int64   `json:"jobs_dispatched"`
	Charge     float64 `json:"charge"`
}

// Stats assembles the current metrics snapshot.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	s.syncSlotsLocked()
	slots := s.slots
	busy := slots - s.slotsFree
	stored := len(s.jobs)
	depth := s.nQueued
	var tenants map[string]TenantStats
	if len(s.tenants) > 0 {
		tenants = make(map[string]TenantStats, len(s.tenants))
		for name, t := range s.tenants {
			tenants[name] = TenantStats{
				Weight:     t.weight,
				MaxSlots:   t.maxSlots,
				SlotsBusy:  t.inUse,
				Queued:     t.queued,
				Dispatched: t.dispatched,
				Charge:     t.charge,
			}
		}
	}
	s.mu.Unlock()
	up := time.Since(s.start)
	iters := s.mIterations.Load()
	st := Stats{
		Backend:       s.cfg.Backend.Name(),
		Slots:         slots,
		SlotsBusy:     busy,
		QueueDepth:    depth,
		QueueCapacity: s.cfg.QueueDepth,
		JobsQueued:    int64(depth),
		JobsRunning:   s.mRunning.Load(),
		JobsSubmitted: s.mSubmitted.Load(),
		JobsRejected:  s.mRejected.Load(),
		JobsSolved:    s.mSolved.Load(),
		JobsUnsolved:  s.mUnsolved.Load(),
		JobsCancelled: s.mCancelled.Load(),
		JobsFailed:    s.mFailed.Load(),
		JobsStored:    stored,
		Iterations:    iters,
		Adoptions:     s.mAdoptions.Load(),
		Yielded:       s.mYielded.Load(),
		AutoSized:     s.mAutoSized.Load(),
		AutoRejected:  s.mAutoRejected.Load(),
		UptimeMS:      up.Milliseconds(),
		Tenants:       tenants,
	}
	if sec := up.Seconds(); sec > 0 {
		st.IterationsPerSec = float64(iters) / sec
	}
	if mp, ok := s.cfg.Backend.(MetricsProvider); ok {
		st.Fleet = mp.BackendMetrics()
	}
	return st
}
