package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/multiwalk"
)

// fastReq is a request that solves in milliseconds.
func fastReq() Request {
	return Request{Problem: "costas", Size: 8, Walkers: 1, Seed: 1, TimeoutMS: 30_000}
}

// hardReq is a request that cannot finish before its (long) deadline:
// a large magic square restarts forever under the tuned defaults.
func hardReq(timeoutMS int64) Request {
	return Request{Problem: "magic-square", Size: 30, Walkers: 1, Seed: 1, TimeoutMS: timeoutMS}
}

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// waitForState polls until the job reaches the wanted state.
func waitForState(t *testing.T, s *Scheduler, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == want {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	job, _ := s.Get(id)
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, job)
	return Job{}
}

func TestSubmitWaitSolves(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 4})
	job, err := s.SubmitWait(context.Background(), Request{Problem: "costas", Size: 8, Walkers: 2, Seed: 7, TimeoutMS: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateSolved {
		t.Fatalf("state = %s, want solved (%+v)", job.State, job)
	}
	if job.Result == nil || !job.Result.Solved || len(job.Result.Solution) != 8 {
		t.Fatalf("bad result: %+v", job.Result)
	}
	if job.Result.CompletedWalkers != 2 || job.Result.Truncated {
		t.Fatalf("walker accounting wrong: %+v", job.Result)
	}
	if job.StartedAt.IsZero() || job.FinishedAt.IsZero() || job.SubmittedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", job)
	}
	if job.Request.Seed != 7 {
		t.Fatalf("request echo lost the seed: %+v", job.Request)
	}
}

func TestRegistryDrivenValidation(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 2})
	cases := []Request{
		{},                             // missing problem
		{Problem: "no-such-benchmark"}, // unknown problem
		{Problem: "costas", Size: 8, Walkers: 99},       // walkers > slots
		{Problem: "costas", Size: 8, Walkers: -1},       // negative walkers
		{Problem: "costas", Size: 8, Strategy: "nope"},  // unknown strategy
		{Problem: "costas", Size: 8, TimeoutMS: -5},     // negative timeout
		{Problem: "costas", Size: 8, MaxIterations: -1}, // negative budget
		{Problem: "costas", Size: 8, Walkers: 1, Portfolio: []PortfolioSpec{{Strategy: "bogus"}}},
		{Problem: "costas", Size: 8, Walkers: 1, Portfolio: []PortfolioSpec{{Strategy: "adaptive"}, {Strategy: "metropolis"}}}, // 2nd entry unreachable
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadRequest", i, req, err)
		}
	}
	if got := s.Stats().JobsRejected; got != int64(len(cases)) {
		t.Errorf("JobsRejected = %d, want %d", got, len(cases))
	}
}

func TestQueueFullRejection(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1, QueueDepth: 1})
	running, err := s.Submit(hardReq(60_000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, running.ID, StateRunning)

	queued, err := s.Submit(hardReq(60_000))
	if err != nil {
		t.Fatalf("queue with headroom rejected: %v", err)
	}
	if _, err := s.Submit(hardReq(60_000)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().JobsRejected; got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}

	// Backpressure must clear once the head job leaves the queue.
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, queued.ID, StateCancelled)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Submit(hardReq(60_000))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after cancelling the queued job")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeadlineExpiryCancelsJob(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 2})
	job, err := s.SubmitWait(context.Background(), hardReq(50))
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled (%+v)", job.State, job)
	}
	if !strings.Contains(job.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", job.Error)
	}
	if job.Result == nil || !job.Result.Truncated {
		t.Fatalf("deadline-expired job result not marked Truncated: %+v", job.Result)
	}
	if job.Result.TotalIterations == 0 {
		t.Fatal("job did no work before the deadline")
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1})
	job, err := s.Submit(hardReq(60_000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateRunning)
	if _, err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, s, job.ID, StateCancelled)
	if final.Result == nil || !final.Result.Truncated {
		t.Fatalf("cancelled job result not marked Truncated: %+v", final.Result)
	}
	// Cancelling a finished job is a no-op.
	again, err := s.Cancel(job.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel: %v %+v", err, again)
	}
}

// TestSubmitWaitContextExpiryReturnsHandle: an expired wait must still
// hand back the job id so the caller can cancel the live job instead
// of orphaning it in the pool.
func TestSubmitWaitContextExpiryReturnsHandle(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	job, err := s.SubmitWait(ctx, hardReq(60_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if job.ID == "" {
		t.Fatal("expired wait returned no job handle")
	}
	if job.State.Terminal() {
		t.Fatalf("job unexpectedly terminal: %+v", job)
	}
	if _, err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateCancelled)
}

func TestCancelQueuedJob(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1, QueueDepth: 4})
	blocker, err := s.Submit(hardReq(60_000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, blocker.ID, StateRunning)
	queued, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled", cancelled.State)
	}
	if cancelled.StartedAt != (time.Time{}) {
		t.Fatalf("never-dispatched job has StartedAt: %+v", cancelled)
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1})
	if _, err := s.Get("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel: %v, want ErrNotFound", err)
	}
	if _, err := s.Wait(context.Background(), "j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait: %v, want ErrNotFound", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := New(Config{Slots: 1})
	s.Close()
	if _, err := s.Submit(fastReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTTLEviction(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 2, ResultTTL: 30 * time.Millisecond})
	job, err := s.SubmitWait(context.Background(), fastReq())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Get(job.ID); errors.Is(err, ErrNotFound) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never evicted past its TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseCancelsQueuedAndRunning shuts down a loaded scheduler and
// checks that every job lands in a terminal state and every goroutine
// exits.
func TestCloseCancelsQueuedAndRunning(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Slots: 2, QueueDepth: 16})
	var ids []string
	for i := 0; i < 6; i++ {
		job, err := s.Submit(hardReq(60_000))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	time.Sleep(10 * time.Millisecond) // let the dispatcher start a couple
	s.Close()
	for _, id := range ids {
		job, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != StateCancelled {
			t.Errorf("job %s after Close: %s, want cancelled", id, job.State)
		}
	}
	// Every scheduler goroutine must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentMixedJobs is the acceptance scenario: 200+ concurrent
// mixed-problem jobs over a small pool, zero dropped results, every job
// in a correct terminal state, clean shutdown.
func TestConcurrentMixedJobs(t *testing.T) {
	const jobs = 200
	s := newTestScheduler(t, Config{Slots: 8, QueueDepth: jobs, DefaultTimeout: 30 * time.Second})
	scenarios := []Request{
		{Problem: "costas", Size: 8, Walkers: 1},
		{Problem: "costas", Size: 9, Walkers: 2},
		{Problem: "queens", Size: 20, Walkers: 1},
		{Problem: "all-interval", Size: 8, Walkers: 2},
		{Problem: "magic-square", Size: 4, Walkers: 1},
		{Problem: "costas", Size: 8, Walkers: 2, Portfolio: []PortfolioSpec{{Strategy: "adaptive"}, {Strategy: "metropolis"}}},
	}

	var mu sync.Mutex
	results := make(map[string]Job, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		req := scenarios[i%len(scenarios)]
		req.Seed = uint64(i + 1)
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			// Submission itself is concurrent; retry briefly on
			// backpressure so every job is eventually admitted.
			var job Job
			var err error
			for {
				job, err = s.Submit(req)
				if !errors.Is(err, ErrQueueFull) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			final, err := s.Wait(context.Background(), job.ID)
			if err != nil {
				t.Errorf("wait %s: %v", job.ID, err)
				return
			}
			mu.Lock()
			results[job.ID] = final
			mu.Unlock()
		}(req)
	}
	wg.Wait()

	if len(results) != jobs {
		t.Fatalf("dropped results: got %d of %d", len(results), jobs)
	}
	solved := 0
	for id, job := range results {
		if !job.State.Terminal() {
			t.Errorf("job %s not terminal: %s", id, job.State)
		}
		switch job.State {
		case StateSolved:
			solved++
			if job.Result == nil || !job.Result.Solved || job.Result.Solution == nil {
				t.Errorf("job %s solved without a solution: %+v", id, job.Result)
			}
		case StateFailed:
			t.Errorf("job %s failed: %s", id, job.Error)
		}
	}
	if solved < jobs/2 {
		t.Errorf("only %d of %d tiny jobs solved", solved, jobs)
	}

	st := s.Stats()
	if st.JobsSubmitted != jobs {
		t.Errorf("JobsSubmitted = %d, want %d", st.JobsSubmitted, jobs)
	}
	if st.JobsQueued != 0 || st.JobsRunning != 0 || st.SlotsBusy != 0 {
		t.Errorf("scheduler not quiescent: %+v", st)
	}
	if terminal := st.JobsSolved + st.JobsUnsolved + st.JobsCancelled + st.JobsFailed; terminal != jobs {
		t.Errorf("terminal counters sum to %d, want %d", terminal, jobs)
	}
	if st.Iterations == 0 {
		t.Error("iteration throughput counter never moved")
	}
}

// TestSubmitCancelChurnWhileBlocked regression-tests a scheduler
// deadlock: cancelling queued jobs while the dispatcher is head-of-line
// blocked used to leak queue-buffer slots until Submit blocked forever
// holding the scheduler lock. Churning submissions through a blocked
// queue must always either admit or reject, never hang.
func TestSubmitCancelChurnWhileBlocked(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 1, QueueDepth: 2})
	blocker, err := s.Submit(hardReq(60_000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, blocker.ID, StateRunning)
	head, err := s.Submit(hardReq(60_000)) // head-of-line, slot-waiting
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3*s.Config().QueueDepth+5; i++ {
			job, err := s.Submit(fastReq())
			if errors.Is(err, ErrQueueFull) {
				continue
			}
			if err != nil {
				t.Errorf("churn submit %d: %v", i, err)
				return
			}
			if _, err := s.Cancel(job.ID); err != nil {
				t.Errorf("churn cancel %d: %v", i, err)
				return
			}
		}
		// The scheduler must still be fully operational.
		if _, err := s.Get(head.ID); err != nil {
			t.Errorf("Get after churn: %v", err)
		}
		if st := s.Stats(); st.QueueDepth > s.Config().QueueDepth {
			t.Errorf("queue depth %d exceeds capacity %d", st.QueueDepth, s.Config().QueueDepth)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler deadlocked under submit/cancel churn")
	}
}

func TestSlotAccountingAcrossWalkerCounts(t *testing.T) {
	// A 4-walker job on a 4-slot pool occupies the whole pool; a
	// following 1-walker job must wait, then run.
	s := newTestScheduler(t, Config{Slots: 4, QueueDepth: 8})
	big, err := s.Submit(Request{Problem: "magic-square", Size: 30, Walkers: 4, Seed: 1, TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, big.ID, StateRunning)
	if st := s.Stats(); st.SlotsBusy != 4 {
		t.Fatalf("SlotsBusy = %d, want 4", st.SlotsBusy)
	}
	small, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if job, _ := s.Get(small.ID); job.State != StateQueued {
		t.Fatalf("small job ran on a full pool: %s", job.State)
	}
	if _, err := s.Cancel(big.ID); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, s, small.ID, StateSolved)
	if final.Result == nil || !final.Result.Solved {
		t.Fatalf("small job did not solve after slots freed: %+v", final)
	}
}

func TestExchangeJobRunsAndValidates(t *testing.T) {
	s := newTestScheduler(t, Config{Slots: 4})

	// A dependent (exchange) job reaches a terminal solved state on the
	// local backend and surfaces its adoption accounting.
	job, err := s.SubmitWait(context.Background(), Request{
		Problem: "costas", Size: 9, Walkers: 2, Seed: 11, TimeoutMS: 30_000,
		Exchange: &ExchangeSpec{Enabled: true, PeriodIters: 64, AdoptFactor: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateSolved {
		t.Fatalf("exchange job state = %s (%+v)", job.State, job)
	}
	if job.Request.Exchange == nil || !job.Request.Exchange.Enabled {
		t.Fatalf("exchange spec not echoed in the job request: %+v", job.Request)
	}

	// The dependent-run accounting must survive condensation into the
	// transport shape: Adoptions is copied through and Yielded walkers
	// are counted.
	jr := condenseResult(&multiwalk.Result{
		Adoptions: 7,
		Walkers: []multiwalk.WalkerStat{
			{Walker: 0, Adoptions: 7},
			{Walker: 1, Yielded: true},
		},
	})
	if jr.Adoptions != 7 || jr.YieldedWalkers != 1 {
		t.Fatalf("exchange accounting lost in condenseResult: %+v", jr)
	}

	// Degenerate exchange tuning is a 400-class admission error, not a
	// late job failure.
	bad := []ExchangeSpec{
		{Enabled: true, PeriodIters: -1},
		{Enabled: true, AdoptFactor: 0.5},
		{Enabled: true, PerturbSwaps: -1},
	}
	for _, x := range bad {
		spec := x
		if _, err := s.Submit(Request{Problem: "costas", Size: 8, Walkers: 1, Exchange: &spec}); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("bad exchange spec %+v admitted: %v", spec, err)
		}
	}

	// A disabled spec is inert: the job stays an independent run.
	job2, err := s.SubmitWait(context.Background(), Request{
		Problem: "costas", Size: 8, Walkers: 1, Seed: 3, TimeoutMS: 30_000,
		Exchange: &ExchangeSpec{Enabled: false, AdoptFactor: 0.5}, // tuning ignored when disabled
	})
	if err != nil || job2.State != StateSolved {
		t.Fatalf("disabled exchange spec broke an independent job: %v %+v", err, job2)
	}
}
