package service

// Auto-sizing: a request may carry AutoSize instead of a fixed Walkers
// count, and admission picks the walker count from the calibrated
// runtime distribution (internal/calibrate + stats.FitBest). This is
// the paper's speedup analysis run in reverse — instead of measuring
// speedup at a chosen k, the predicted speedup curve chooses k:
//
//   - With a latency target, the chosen k is the smallest whose
//     predicted P95 job latency (the 0.95-quantile of min-of-k,
//     converted through the calibrated iteration rate) meets it. A
//     target below what the model says any admissible k can reach is a
//     typed ErrUnsatisfiable — the shifted-exponential family has a
//     hard floor (Shift) that no parallelism gets under.
//   - Without a target, the chosen k is where the saturation curve's
//     marginal gain drops below MinGain: every slot past that point
//     buys less than MinGain relative speedup and is released to other
//     tenants instead, composing with the weighted-fair ledger (an
//     auto-sized job is charged like any fixed-width job of the same
//     k).
//
// The chosen k is written into Request.Walkers, so it flows through
// normal admission, tenant quotas and slot accounting, and is echoed
// back in every job snapshot for clients to observe.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/calibrate"
	"repro/internal/core"
)

// AutoSizeSpec asks admission to choose the walker count from
// calibration instead of taking a fixed Walkers value.
type AutoSizeSpec struct {
	// TargetP95 is an optional latency target as a Go duration string
	// ("500ms", "2s"): the chosen k is the smallest whose predicted P95
	// job latency meets it. Empty selects marginal-gain sizing.
	TargetP95 string `json:"target_p95,omitempty"`
	// MaxWalkers caps the chosen count; 0 selects the pool size.
	MaxWalkers int `json:"max_walkers,omitempty"`
	// MinGain is the marginal-gain cutoff for targetless sizing: growth
	// stops at the last k whose relative speedup gain over k-1 is at
	// least MinGain. 0 selects 0.05.
	MinGain float64 `json:"min_gain,omitempty"`
}

// Typed auto-size errors. Both surface through the HTTP layer:
// ErrNoCalibration as 409 (retry after calibrating), ErrUnsatisfiable
// as 422 (the request is well-formed but no walker count satisfies
// it).
var (
	// ErrNoCalibration reports an AutoSize request whose (problem, size,
	// params, strategy) population has no (or too little) calibration
	// data, or a server running without a calibration store.
	ErrNoCalibration = errors.New("service: no calibration for request")
	// ErrUnsatisfiable reports a latency target below the predicted P95
	// at every admissible walker count — the runtime distribution's
	// floor makes the target unreachable by parallelism alone.
	ErrUnsatisfiable = errors.New("service: latency target unsatisfiable at any walker count")
)

// defaultMinGain is the marginal-speedup cutoff when the spec leaves
// MinGain zero: stop adding walkers once the next one buys < 5%.
const defaultMinGain = 0.05

// autoSizeQuantile is the latency quantile targets are solved against.
const autoSizeQuantile = 0.95

// calibrationKey maps a normalized request onto its calibration
// population. It must match what the live feed records (recordOutcome)
// so predictions and telemetry describe the same population; Size and
// Strategy are the post-default-resolution values for Size, and the
// verbatim request strategy ("" = tuned default) for Strategy.
func calibrationKey(req *Request) calibrate.Key {
	return calibrate.Key{
		Problem:  req.Problem,
		Size:     req.Size,
		Params:   calibrate.CanonicalParams(req.Params),
		Strategy: req.Strategy,
	}
}

// autoSize resolves req.AutoSize into a concrete req.Walkers. Called
// from normalizeRequest after problem/size/params resolution (the
// calibration key needs resolved values) and before walker validation
// (the chosen count then passes through the same bounds checks as an
// explicit one). Counts successes and typed rejections for /metrics.
func (s *Scheduler) autoSize(req *Request) error {
	spec := req.AutoSize
	if req.Walkers != 0 {
		return fmt.Errorf("%w: autosize and walkers are mutually exclusive", ErrBadRequest)
	}
	if len(req.Portfolio) > 0 || (req.Exchange != nil && req.Exchange.Enabled) {
		// Calibration populations are per-strategy independent runs; a
		// portfolio mixes strategies and a dependent run's distribution
		// is not the sequential one the model was fitted to.
		return fmt.Errorf("%w: autosize requires an independent single-strategy job", ErrBadRequest)
	}
	if req.Strategy != "" && !knownStrategy(req.Strategy) {
		// normalizeRequest validates the strategy after sizing; check it
		// here too so an unknown strategy is a 400, not a misleading
		// no-calibration 409.
		return fmt.Errorf("%w: unknown strategy %q (known: %v)", ErrBadRequest, req.Strategy, core.StrategyNames())
	}
	minGain := spec.MinGain
	if minGain == 0 {
		minGain = defaultMinGain
	}
	if minGain < 0 || minGain >= 1 {
		return fmt.Errorf("%w: autosize min_gain = %v outside (0, 1)", ErrBadRequest, spec.MinGain)
	}
	var target time.Duration
	if spec.TargetP95 != "" {
		d, err := time.ParseDuration(spec.TargetP95)
		if err != nil || d <= 0 {
			return fmt.Errorf("%w: autosize target_p95 %q is not a positive duration", ErrBadRequest, spec.TargetP95)
		}
		target = d
	}
	kmax := s.curSlots()
	if spec.MaxWalkers < 0 {
		return fmt.Errorf("%w: autosize max_walkers = %d < 0", ErrBadRequest, spec.MaxWalkers)
	}
	if spec.MaxWalkers > 0 && spec.MaxWalkers < kmax {
		kmax = spec.MaxWalkers
	}
	if kmax < 1 {
		kmax = 1
	}

	if s.cfg.Calibration == nil {
		s.mAutoRejected.Add(1)
		return fmt.Errorf("%w: server runs without a calibration store", ErrNoCalibration)
	}
	key := calibrationKey(req)
	res, err := s.cfg.Calibration.Resolve(key)
	if err != nil {
		s.mAutoRejected.Add(1)
		if errors.Is(err, calibrate.ErrInsufficient) {
			return fmt.Errorf("%w: %v", ErrNoCalibration, err)
		}
		return err
	}

	var k int
	if target > 0 {
		if res.ItersPerSec <= 0 {
			s.mAutoRejected.Add(1)
			return fmt.Errorf("%w: %s has no calibrated iteration rate to convert %v into effort", ErrNoCalibration, key, target)
		}
		targetIters := target.Seconds() * res.ItersPerSec
		for k = 1; k <= kmax; k++ {
			if res.Fit.MinQuantile(k, autoSizeQuantile) <= targetIters {
				break
			}
		}
		if k > kmax {
			s.mAutoRejected.Add(1)
			floor := time.Duration(res.Fit.RuntimeFloor() / res.ItersPerSec * float64(time.Second))
			best := time.Duration(res.Fit.MinQuantile(kmax, autoSizeQuantile) / res.ItersPerSec * float64(time.Second))
			return fmt.Errorf("%w: predicted P95 at %d walkers is %v (runtime floor %v), target %v",
				ErrUnsatisfiable, kmax, best.Round(time.Millisecond), floor.Round(time.Millisecond), target)
		}
	} else {
		// Marginal-gain sizing: climb the saturation curve while each
		// added walker still buys >= minGain relative speedup.
		k = 1
		prev := 1.0 // Speedup(1) by definition
		for k < kmax {
			next := res.Fit.Speedup(k + 1)
			if next < prev*(1+minGain) {
				break
			}
			prev = next
			k++
		}
	}
	req.Walkers = k
	s.mAutoSized.Add(1)
	return nil
}

// recordOutcome feeds a finished job back into the calibration store:
// live telemetry keeps calibration fresh without dedicated bench runs.
// Only solved, independent, single-strategy runs are recorded — a
// portfolio or dependent run is not a draw of any one strategy's
// sequential distribution — and only single-walker runs are flagged
// Sequential (a k-walker winner effort is a min-of-k draw, which would
// bias the fit; it still carries rate information and a measured
// speedup observation).
func (s *Scheduler) recordOutcome(j *job, res *jobOutcome) {
	if s.cfg.Calibration == nil || res == nil || !res.solved {
		return
	}
	if len(j.req.Portfolio) > 0 || (j.req.Exchange != nil && j.req.Exchange.Enabled) {
		return
	}
	if res.winnerIterations <= 0 {
		return
	}
	b := calibrate.Batch{
		Source:     "live",
		RecordedAt: time.Now(),
		Sequential: j.opts.Walkers == 1,
		Walkers:    j.opts.Walkers,
		Iters:      []float64{float64(res.winnerIterations)},
	}
	if sec := res.elapsed.Seconds(); sec > 0 && res.totalIterations > 0 {
		// Per-walker rate: total engine iterations over walker-seconds.
		b.ItersPerSec = float64(res.totalIterations) / sec / float64(j.opts.Walkers)
	}
	// A validation failure here only means the outcome was degenerate
	// (e.g. zero-effort); dropping it is the right response.
	_ = s.cfg.Calibration.Record(calibrationKey(&j.req), b)
}

// jobOutcome is the slice of a multiwalk result the calibration feed
// needs, decoupled so finalize can hand it over without re-locking.
type jobOutcome struct {
	solved           bool
	winnerIterations int64
	totalIterations  int64
	elapsed          time.Duration
}
