package service

import "fmt"

// ProgressEvent is one entry in a job's live event flow, consumed
// through Scheduler.Watch. Three kinds share the type:
//
//   - lifecycle: Walker == -1, Terminal == false — the job started
//     running;
//   - walker milestone: Walker >= 0 — a periodic, per-walker
//     (iterations, cost) sample, throttled to at most one per walker
//     per progressEventInterval;
//   - terminal: Terminal == true, Job holds the final snapshot
//     (result or error included).
//
// Events are delivered best-effort: a slow subscriber loses
// intermediate events rather than stalling the walkers (the send is
// non-blocking into a bounded buffer). Only the channel close is
// reliable, so consumers that need the final state re-fetch it with
// Get when the channel closes without a terminal event.
type ProgressEvent struct {
	JobID      string
	State      State
	Walker     int // -1 for lifecycle and terminal events
	Iterations int64
	Cost       int
	Terminal   bool
	Job        *Job // final snapshot, set only on terminal events
}

// watchBuffer is each subscriber channel's capacity. Milestones are
// throttled per walker, so the buffer only has to absorb short
// consumer stalls, not the walkers' raw progress rate.
const watchBuffer = 64

// Watch subscribes to a job's progress events. The returned channel
// is closed once the job reaches a terminal state (the terminal event,
// buffer permitting, is the last value before the close); the returned
// cancel function detaches early and is idempotent. Watching an
// already-finished job yields its terminal event immediately. This is
// the seam the streaming API (StreamServer) serves job progress from —
// replacing GET polling — but it is equally usable in process.
func (s *Scheduler) Watch(id string) (<-chan ProgressEvent, func(), error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	ch := make(chan ProgressEvent, watchBuffer)
	j.watchMu.Lock()
	if j.watchDone {
		j.watchMu.Unlock()
		snap := j.snapshot()
		ch <- terminalEvent(j.id, snap)
		close(ch)
		return ch, func() {}, nil
	}
	j.watchers = append(j.watchers, ch)
	j.watchMu.Unlock()
	cancel := func() { j.unwatch(ch) }
	return ch, cancel, nil
}

// terminalEvent builds the final event from a terminal job snapshot.
func terminalEvent(id string, snap Job) ProgressEvent {
	return ProgressEvent{JobID: id, State: snap.State, Walker: -1, Terminal: true, Job: &snap}
}

// emit fans one event out to every subscriber, never blocking: a full
// buffer drops the event for that subscriber.
func (j *job) emit(ev ProgressEvent) {
	j.watchMu.Lock()
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
	j.watchMu.Unlock()
}

// finishWatchers delivers the terminal event and closes every
// subscriber channel. Called exactly once, after the job's terminal
// transition is fully published (finalize closed j.done), so a woken
// subscriber that re-fetches the job observes the terminal snapshot.
func (j *job) finishWatchers(snap Job) {
	ev := terminalEvent(j.id, snap)
	j.watchMu.Lock()
	ws := j.watchers
	j.watchers = nil
	j.watchDone = true
	j.watchMu.Unlock()
	for _, ch := range ws {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
}

// unwatch detaches one subscriber early. If the job already finished,
// the channel was closed by finishWatchers and there is nothing to do.
func (j *job) unwatch(ch chan ProgressEvent) {
	j.watchMu.Lock()
	defer j.watchMu.Unlock()
	for i, w := range j.watchers {
		if w == ch {
			j.watchers = append(j.watchers[:i:i], j.watchers[i+1:]...)
			return
		}
	}
}
