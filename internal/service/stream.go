package service

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// streamHandshakeTimeout bounds the wire handshake per connection.
const streamHandshakeTimeout = 10 * time.Second

// StreamServer serves job progress over the persistent binary
// transport (internal/wire), replacing GET /v1/jobs/{id} polling for
// clients that opt in. One TCP connection multiplexes any number of
// job subscriptions: the client sends a Subscribe frame per job and
// receives that job's ProgressEvent flow as Progress frames, ending
// with a terminal frame carrying the final result. The HTTP API stays
// authoritative and unchanged — the stream is a delivery optimization,
// discovered through /healthz ("stream_addr") and safe to lose: a
// client whose connection dies falls back to polling.
type StreamServer struct {
	s  *Scheduler
	ln net.Listener

	mu     sync.Mutex
	conns  map[*wire.Conn]struct{}
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewStreamServer listens on addr ("" selects 127.0.0.1:0) and serves
// the scheduler's progress events. It does not register itself for
// discovery — the caller decides the advertised address and passes it
// to Scheduler.SetStreamAddr (the listener may bind a wildcard or
// sit behind a proxy).
func NewStreamServer(s *Scheduler, addr string) (*StreamServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: starting progress stream listener on %s: %w", addr, err)
	}
	sv := &StreamServer{
		s:     s,
		ln:    ln,
		conns: make(map[*wire.Conn]struct{}),
		done:  make(chan struct{}),
	}
	sv.wg.Add(1)
	go sv.accept()
	return sv, nil
}

// Addr returns the listener's concrete host:port.
func (sv *StreamServer) Addr() string { return sv.ln.Addr().String() }

// Close stops the listener, severs every live connection and waits for
// the per-connection goroutines to drain.
func (sv *StreamServer) Close() {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.wg.Wait()
		return
	}
	sv.closed = true
	conns := make([]*wire.Conn, 0, len(sv.conns))
	for c := range sv.conns {
		conns = append(conns, c)
	}
	sv.mu.Unlock()
	close(sv.done)
	_ = sv.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	sv.wg.Wait()
}

func (sv *StreamServer) accept() {
	defer sv.wg.Done()
	for {
		nc, err := sv.ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(nc)
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			_ = c.Close()
			return
		}
		sv.conns[c] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		go sv.serve(c)
	}
}

// serve drives one client connection: handshake, then a read loop
// spawning one forwarding goroutine per Subscribe frame. The goroutines
// share the connection's serialized writer, so frames from concurrent
// jobs interleave whole, never torn.
func (sv *StreamServer) serve(c *wire.Conn) {
	defer sv.wg.Done()
	var jobs sync.WaitGroup
	defer jobs.Wait()
	defer sv.drop(c)
	if _, err := c.AcceptHandshake("solve-service", streamHandshakeTimeout); err != nil {
		return
	}
	for {
		typ, payload, err := c.ReadFrame()
		if err != nil {
			return
		}
		if typ != wire.TypeSubscribe {
			// Unknown frame types are skipped for forward compatibility.
			continue
		}
		sub, err := wire.DecodeSubscribe(payload)
		if err != nil {
			return
		}
		jobs.Add(1)
		go func(id string) {
			defer jobs.Done()
			sv.streamJob(c, id)
		}(sub.Job)
	}
}

func (sv *StreamServer) drop(c *wire.Conn) {
	_ = c.Close()
	sv.mu.Lock()
	delete(sv.conns, c)
	sv.mu.Unlock()
}

// streamJob forwards one job's events until the terminal frame. An
// unknown job (never submitted, or TTL-evicted) gets an immediate
// terminal error frame rather than silence, so a subscriber never
// waits on a job that will not report.
func (sv *StreamServer) streamJob(c *wire.Conn, id string) {
	ch, cancel, err := sv.s.Watch(id)
	if err != nil {
		_ = c.WriteProgress(&wire.Progress{Job: id, Walker: -1, Terminal: true, Error: err.Error()})
		return
	}
	defer cancel()
	sawTerminal := false
	for {
		var ev ProgressEvent
		var ok bool
		select {
		case <-sv.done:
			return
		case ev, ok = <-ch:
		}
		if !ok {
			break
		}
		if err := c.WriteProgress(eventFrame(ev)); err != nil {
			_ = c.Close()
			return
		}
		if ev.Terminal {
			sawTerminal = true
		}
	}
	if sawTerminal {
		return
	}
	// Events are best-effort: a full subscriber buffer can drop even the
	// terminal event. The close is reliable, so re-fetch the final state
	// and synthesize the terminal frame.
	if job, gerr := sv.s.Get(id); gerr == nil && job.State.Terminal() {
		_ = c.WriteProgress(jobFrame(job))
		return
	}
	_ = c.WriteProgress(&wire.Progress{Job: id, Walker: -1, Terminal: true, Error: "job result unavailable"})
}

// eventFrame converts a ProgressEvent into its wire frame.
func eventFrame(ev ProgressEvent) *wire.Progress {
	p := &wire.Progress{
		Job:        ev.JobID,
		State:      string(ev.State),
		Walker:     int64(ev.Walker),
		Iterations: ev.Iterations,
		Cost:       int64(ev.Cost),
		Terminal:   ev.Terminal,
	}
	if ev.Terminal && ev.Job != nil {
		p.State = string(ev.Job.State)
		p.Error = ev.Job.Error
		p.Result = wireResult(ev.Job.Result)
	}
	return p
}

// jobFrame synthesizes a terminal frame from a job snapshot.
func jobFrame(job Job) *wire.Progress {
	return &wire.Progress{
		Job:      job.ID,
		State:    string(job.State),
		Walker:   -1,
		Terminal: true,
		Error:    job.Error,
		Result:   wireResult(job.Result),
	}
}

// wireResult maps the transport result onto the wire struct.
func wireResult(r *JobResult) *wire.ProgressResult {
	if r == nil {
		return nil
	}
	return &wire.ProgressResult{
		Solved:           r.Solved,
		Winner:           int64(r.Winner),
		WinnerStrategy:   r.WinnerStrategy,
		WinnerIterations: r.WinnerIterations,
		TotalIterations:  r.TotalIterations,
		Completed:        int64(r.CompletedWalkers),
		Truncated:        r.Truncated,
		ElapsedMS:        r.ElapsedMS,
		Adoptions:        r.Adoptions,
		Yielded:          int64(r.YieldedWalkers),
		BestCost:         int64(r.BestCost),
		Solution:         r.Solution,
	}
}

// JobFromProgress reconstructs the transport-level result from a
// terminal Progress frame — the inverse of the frames this server
// emits, shared with stream clients (examples/loadgen) so the two ends
// cannot drift on field mapping.
func JobFromProgress(p *wire.Progress) Job {
	job := Job{ID: p.Job, State: State(p.State), Error: p.Error}
	if r := p.Result; r != nil {
		job.Result = &JobResult{
			Solved:           r.Solved,
			Winner:           int(r.Winner),
			WinnerStrategy:   r.WinnerStrategy,
			WinnerIterations: r.WinnerIterations,
			TotalIterations:  r.TotalIterations,
			CompletedWalkers: int(r.Completed),
			Truncated:        r.Truncated,
			ElapsedMS:        r.ElapsedMS,
			Adoptions:        r.Adoptions,
			YieldedWalkers:   int(r.Yielded),
			BestCost:         int(r.BestCost),
			Solution:         r.Solution,
		}
	}
	return job
}
