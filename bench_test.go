// Benchmarks: one testing.B target per paper artifact (Figs. 1-3, the
// headline-claims summary, the execution-time tables, the runtime-
// distribution diagnostics) plus the ablations and engine
// micro-benchmarks. The expensive step — collecting runtime
// distributions — happens once per `go test -bench` process at tiny
// scale; each benchmark iteration then regenerates its artifact from
// the shared suite, which is exactly the work the paper's figures
// represent.
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/stats"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func tinySuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.NewSuite(context.Background(), bench.ScaleTiny, 2012)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkFig1HA8000Speedups regenerates paper Fig. 1: CSPLib speedups
// on the HA8000 platform model.
func BenchmarkFig1HA8000Speedups(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Grid5000Speedups regenerates paper Fig. 2: CSPLib
// speedups on the Grid'5000 Suno platform model.
func BenchmarkFig2Grid5000Speedups(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3CostasLogLog regenerates paper Fig. 3: Costas speedups
// w.r.t. 32 cores with the log-log slope fit.
func BenchmarkFig3CostasLogLog(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryClaims regenerates the headline-claims table
// (speedups at 64/128/256 cores; Costas slope).
func BenchmarkSummaryClaims(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SummaryTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeTables regenerates the EvoCOP'11-style execution-time
// tables behind Figs. 1-2 (all benchmarks x all three platforms).
func BenchmarkTimeTables(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TimesTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeDistributions regenerates the distribution
// diagnostics table (EXP-D1): CV, QQ-R2 and the shifted-exponential
// fits that explain the paper's two speedup regimes.
func BenchmarkRuntimeDistributions(b *testing.B) {
	s := tinySuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DistributionTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCommunication compares independent vs dependent
// multi-walk (EXP-A1, the paper's future-work question) on a small
// Costas instance.
func BenchmarkAblationCommunication(b *testing.B) {
	w := bench.Workload{Benchmark: "costas", Size: 10}
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationComm(context.Background(), w, []int{2, 4}, 3, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKnobs sweeps the engine's design knobs (EXP-A2).
func BenchmarkAblationKnobs(b *testing.B) {
	w := bench.Workload{Benchmark: "costas", Size: 10}
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationKnobs(context.Background(), w, 3, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialSolve measures one full sequential Adaptive Search
// solve per benchmark — the paper's T_seq.
func BenchmarkSequentialSolve(b *testing.B) {
	cases := []struct {
		name string
		size int
	}{
		{"costas", 12},
		{"all-interval", 16},
		{"magic-square", 8},
		{"perfect-square", 9},
		{"queens", 64},
		{"langford", 16},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			factory, err := problems.NewFactory(c.name, c.size)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				p, err := factory()
				if err != nil {
					b.Fatal(err)
				}
				opts := core.TunedOptions(p)
				opts.Seed = uint64(i)
				res, err := core.Solve(context.Background(), p, opts)
				if err != nil || !res.Solved {
					b.Fatalf("unsolved: %v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkMultiWalkVirtual measures a deterministic 8-walk virtual
// multi-walk job — the paper's parallel execution in its measurement
// form.
func BenchmarkMultiWalkVirtual(b *testing.B) {
	factory, err := problems.NewFactory("costas", 11)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := factory()
	engine := core.TunedOptions(p)
	for i := 0; i < b.N; i++ {
		res, err := multiwalk.RunVirtual(context.Background(), factory, multiwalk.Options{
			Walkers: 8,
			Seed:    uint64(i),
			Engine:  engine,
		})
		if err != nil || !res.Solved {
			b.Fatalf("unsolved: %+v %v", res, err)
		}
	}
}

// BenchmarkMultiWalkConcurrent measures the goroutine-based first-
// solution-wins execution (the production path).
func BenchmarkMultiWalkConcurrent(b *testing.B) {
	factory, err := problems.NewFactory("costas", 11)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := factory()
	engine := core.TunedOptions(p)
	for i := 0; i < b.N; i++ {
		res, err := multiwalk.Run(context.Background(), factory, multiwalk.Options{
			Walkers: 4,
			Seed:    uint64(i),
			Engine:  engine,
		})
		if err != nil || !res.Solved {
			b.Fatalf("unsolved: %+v %v", res, err)
		}
	}
}

// BenchmarkOrderStatEstimator measures the exact E[min_k] estimator on
// a 1000-observation sample across the paper's core counts.
func BenchmarkOrderStatEstimator(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i%977) + 1
	}
	s, err := stats.New(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{16, 32, 64, 128, 256} {
			if _, err := s.ExpectedMin(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}
